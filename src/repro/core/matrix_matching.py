"""The paper's MPI-compliant matrix matching algorithm (Section V).

Two-phase structure:

**Scan** (Algorithm 1, parallel): each thread owns one message; for every
receive request in the current *window* the warp votes via ``ballot``
whether its lanes' messages match, and writes the resulting 32-bit vector
into a (warps x window) vote matrix in shared memory.

**Reduce** (Algorithm 2, sequential over columns): one warp walks the
columns (receive requests) in posted order.  Each lane holds one warp-row
of the matrix and a 32-bit *mask* of its still-unmatched messages.  A
``ballot`` finds which lanes still have candidates; ``ffs`` picks the
lowest lane (earliest warp), and a second ``ffs`` picks the lowest bit
(earliest message within the warp) -- preserving MPI's non-overtaking
order.  The winning message's mask bit is cleared so it cannot be matched
again.

Both phases pipeline: while the reduce warp drains one window of columns,
the scan warps fill the next.  The pipelining collapses at 1024 messages
(all 32 warps needed for scan), which is the performance knee in Figure 4.

Two interchangeable implementations are provided:

* :meth:`MatrixMatcher.match` -- window/block loops in Python, 32-lane
  inner operations vectorized with NumPy, costs charged analytically with
  the same counts the pedantic path would record.  Used by benchmarks.
* :meth:`MatrixMatcher.match_pedantic` -- executes Algorithms 1 and 2
  verbatim on the :class:`~repro.simt.cta.CTA` / :class:`~repro.simt.warp.Warp`
  simulator, one warp instruction at a time.  Used by tests to validate
  the fast path (identical assignments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..simt.cta import CTA, MAX_WARPS_PER_CTA
from ..simt.gpu import GPUSpec, PASCAL_GTX1080
from ..simt.timing import CostLedger, TimingModel
from ..simt.warp import WARP_SIZE, ffs32
from .envelope import EnvelopeBatch
from .result import NO_MATCH, MatchOutcome

__all__ = ["MatrixMatcher", "DEFAULT_WINDOW"]

#: Receive-request columns scanned per pipeline stage.  32 warps x 64
#: columns of int32 votes = 8 KiB of shared memory per buffer; double
#: buffering for the scan/reduce pipeline stays well under the 48 KiB
#: per-CTA limit.
DEFAULT_WINDOW = 64


@dataclass
class _PhasePlan:
    """Per-iteration bookkeeping shared by cost accounting and tests."""

    n_block_msgs: int
    n_warps: int
    n_columns: int
    n_chunks: int


class MatrixMatcher:
    """MPI-compliant GPU matching (scan + ordered reduce).

    Parameters
    ----------
    spec:
        Simulated device (default: the paper's Pascal GTX 1080).
    warps_per_cta:
        Scan warps, i.e. matrix height; 32 (=1024 messages/iteration) in
        the paper.
    window:
        Columns per pipeline stage.
    compaction:
        Append a queue-compaction pass after matching (prefix scan +
        moves).  The paper measures this at roughly 10% of the matching
        rate; it is required whenever unexpected messages exist, and
        skippable under the *no unexpected messages* relaxation.
    compaction_policy:
        ``"always"`` or ``"adaptive"``.  Adaptive implements the paper's
        remark "in cases when the number of matches is very low, the
        bubbles can be tolerated and the compaction can be skipped": the
        pass only runs when at least :data:`COMPACTION_MIN_FRACTION` of
        the requests matched.
    warp_size:
        Lanes per warp.  32 on all real generations; smaller values model
        the *variable warp size* architectural feature the paper endorses
        for short queues (Section VII-C): narrow warps waste fewer lanes
        on queues shorter than 32 and let more matrix rows pack into the
        same thread budget.
    """

    name = "matrix"

    def __init__(self, spec: GPUSpec = PASCAL_GTX1080,
                 warps_per_cta: int = MAX_WARPS_PER_CTA,
                 window: int = DEFAULT_WINDOW,
                 compaction: bool = False,
                 warp_size: int = WARP_SIZE,
                 compaction_policy: str = "always") -> None:
        if compaction_policy not in ("always", "adaptive"):
            raise ValueError("compaction_policy must be 'always' or "
                             "'adaptive'")
        if not 1 <= warps_per_cta <= MAX_WARPS_PER_CTA:
            raise ValueError("warps_per_cta must be in [1, 32]")
        if window < 1:
            raise ValueError("window must be positive")
        if not 1 <= warp_size <= WARP_SIZE:
            raise ValueError(f"warp_size must be in [1, {WARP_SIZE}]")
        # double-buffered vote matrix must fit the CTA's shared memory:
        # 2 buffers x warps x window x 4-byte words
        smem_needed = 2 * warps_per_cta * window * 4
        if smem_needed > spec.shared_mem_per_cta:
            raise ValueError(
                f"window {window} needs {smem_needed} B of shared memory "
                f"for the double-buffered vote matrix; {spec.name} allows "
                f"{spec.shared_mem_per_cta} B per CTA")
        self.spec = spec
        self.warps_per_cta = warps_per_cta
        self.window = window
        self.compaction = compaction
        self.compaction_policy = compaction_policy
        self.warp_size = warp_size

    # -- public API ------------------------------------------------------------

    @property
    def messages_per_iteration(self) -> int:
        """Matrix capacity: one message per thread."""
        return self.warps_per_cta * self.warp_size

    def match(self, messages: EnvelopeBatch,
              requests: EnvelopeBatch) -> MatchOutcome:
        """Match with the vectorized fast path and price the execution."""
        ledger = CostLedger()
        out, iterations = self.execute(messages, requests, ledger)
        return self._finish(out, len(messages), len(requests), ledger,
                            iterations=iterations)

    def execute(self, messages: EnvelopeBatch, requests: EnvelopeBatch,
                ledger: CostLedger) -> tuple[np.ndarray, int]:
        """Fast-path matching, charging costs into a caller-owned ledger.

        Used directly by :class:`~repro.core.partitioned.PartitionedMatcher`,
        which prices several queue ledgers jointly.  Returns the
        request->message vector and the iteration (message block) count.
        """
        messages.assert_concrete("message queue")
        n_msg, n_req = len(messages), len(requests)
        out = np.full(n_req, NO_MATCH, dtype=np.int64)
        if n_msg == 0 or n_req == 0:
            return out, 0

        match_mtx = messages.match_matrix(requests)  # (n_msg, n_req) bool
        block = self.messages_per_iteration
        n_blocks = math.ceil(n_msg / block)
        unmatched_cols = np.ones(n_req, dtype=bool)

        for b in range(n_blocks):
            lo, hi = b * block, min((b + 1) * block, n_msg)
            open_cols = int(np.count_nonzero(unmatched_cols))
            plan = self._plan(hi - lo, open_cols)
            # Pack votes: one int per (warp, column).
            votes = _pack_block_votes(match_mtx[lo:hi], plan.n_warps,
                                      self.warp_size)
            visited = self._reduce_block(votes, unmatched_cols, out, lo,
                                         ledger, plan)
            # The scan pipeline only fills the windows the reduce actually
            # consumed: once every message of the block is matched the
            # remaining columns are skipped (this is why an in-order
            # receive queue is cheap beyond 1024 entries and a reversed
            # one is not -- Section V-B).
            scanned = min(open_cols,
                          math.ceil(visited / self.window) * self.window)
            self._charge_scan(ledger, self._plan(hi - lo, scanned))
            if not unmatched_cols.any():
                break
        if self.compaction and self._should_compact(out, n_req):
            self._charge_compaction(ledger, n_msg, n_req)
        return out, n_blocks

    #: Minimum matched fraction below which adaptive compaction tolerates
    #: the bubbles and skips the pass (Section V-A).
    COMPACTION_MIN_FRACTION = 0.25

    def _should_compact(self, out: np.ndarray, n_req: int) -> bool:
        if self.compaction_policy == "always":
            return True
        matched = int(np.count_nonzero(out != NO_MATCH))
        return matched >= self.COMPACTION_MIN_FRACTION * max(1, n_req)

    # -- fast-path internals -----------------------------------------------------

    def _plan(self, n_block_msgs: int, n_open_columns: int) -> _PhasePlan:
        n_warps = math.ceil(n_block_msgs / self.warp_size)
        n_chunks = math.ceil(n_open_columns / self.window) if n_open_columns else 0
        return _PhasePlan(n_block_msgs=n_block_msgs, n_warps=n_warps,
                          n_columns=n_open_columns, n_chunks=n_chunks)

    def _reduce_block(self, votes: np.ndarray, unmatched_cols: np.ndarray,
                      out: np.ndarray, msg_base: int, ledger: CostLedger,
                      plan: _PhasePlan) -> int:
        """Sequential column reduce (vectorized across the reduce warp's
        lanes).  Returns the number of columns visited before the block's
        messages were exhausted (early exit)."""
        n_warps = votes.shape[0]
        block_msgs = plan.n_block_msgs
        mask = np.full(n_warps, (1 << self.warp_size) - 1, dtype=np.int64)
        cols = np.nonzero(unmatched_cols)[0]
        reduce_phase = ledger.phase("reduce", active_warps=1,
                                    overlap_group=self._overlap_group(plan))
        visited = 0
        matched_in_block = 0
        for j in cols:
            visited += 1
            # lane loads, masked vote, ballot over lanes with candidates
            masked = votes[:, j] & mask
            reduce_phase.add("smem_load", 1)
            reduce_phase.add("ballot", 1)
            reduce_phase.add("alu", 4)
            reduce_phase.add("branch", 1)
            bidders = np.nonzero(masked)[0]
            if bidders.size:
                w = int(bidders[0])              # ffs over the lane ballot
                lane = ffs32(int(masked[w])) - 1  # ffs within the vote word
                out[j] = msg_base + w * self.warp_size + lane
                mask[w] &= ~(1 << lane)
                unmatched_cols[j] = False
                reduce_phase.add("alu", 3)
                reduce_phase.add("smem_store", 1)
                matched_in_block += 1
                if matched_in_block == block_msgs:
                    break  # every message of this block is consumed
        # Results stage in shared memory and flush coalesced per window
        # chunk, so per-column cost barely depends on whether it matched
        # ("performance decreases linearly with the number of matched
        # messages": rate ~ matches, time ~ columns).
        reduce_phase.add("gmem_store",
                         2.0 * math.ceil(max(1, visited) / self.window))
        return visited

    def _overlap_group(self, plan: _PhasePlan) -> str | None:
        """Scan/reduce pipelining: possible only while spare warps exist.

        With all 32 warps scanning (1024-message iterations) the reduce
        cannot be overlapped any more -- the Figure 4 knee.
        """
        return "pipeline" if plan.n_warps < MAX_WARPS_PER_CTA else None

    def _charge_scan(self, ledger: CostLedger, plan: _PhasePlan) -> None:
        """Analytic cost of Algorithm 1 for one message block.

        Per warp: one coalesced 64-bit load of its 32 message envelopes
        (2 x 128 B transactions), then per scanned column a broadcast
        request load (staged through shared memory by the prefetcher), a
        64-bit compare, the ballot, and the vote-matrix store.
        """
        scan = ledger.phase("scan", active_warps=max(1, plan.n_warps),
                            overlap_group=self._overlap_group(plan))
        w, c = plan.n_warps, plan.n_columns
        scan.add("gmem_load", 2 * w)
        scan.add("smem_load", float(w * c))
        scan.add("alu", float(w * c))
        scan.add("ballot", float(w * c))
        scan.add("smem_store", float(w * c))
        # Pipeline handoff barrier per window chunk.
        scan.add("sync", float(plan.n_chunks))

    def _charge_compaction(self, ledger: CostLedger, n_msg: int,
                           n_req: int) -> None:
        """Queue compaction after matching (both queues), at CTA width.

        The paper measures the overall impact at about 10% of the
        matching rate.
        """
        from .compaction import charge_compaction
        charge_compaction(ledger, n_msg + n_req, max_warps=self.warps_per_cta)

    def _finish(self, out: np.ndarray, n_msg: int, n_req: int,
                ledger: CostLedger, iterations: int) -> MatchOutcome:
        timing = TimingModel(self.spec).evaluate(ledger)
        return MatchOutcome(
            request_to_message=out, n_messages=n_msg, n_requests=n_req,
            seconds=timing.seconds, cycles=timing.cycles,
            iterations=max(1, iterations),
            meta={"phase_cycles": timing.per_phase_cycles,
                  "device": self.spec.name,
                  "warps_per_cta": self.warps_per_cta,
                  "window": self.window,
                  "warp_size": self.warp_size,
                  "compaction": self.compaction})

    # -- pedantic path -------------------------------------------------------------

    def match_pedantic(self, messages: EnvelopeBatch,
                       requests: EnvelopeBatch) -> MatchOutcome:
        """Execute Algorithms 1-2 verbatim on the warp simulator.

        Functionally identical to :meth:`match`; costs are recorded by the
        :class:`~repro.simt.warp.Warp` primitives themselves.  Intended for
        validation at small sizes (it loops in Python per warp per column).
        """
        if self.warp_size != WARP_SIZE:
            raise ValueError("the pedantic path executes physical 32-lane "
                             "warps; variable warp sizes are fast-path only")
        messages.assert_concrete("message queue")
        n_msg, n_req = len(messages), len(requests)
        out = np.full(n_req, NO_MATCH, dtype=np.int64)
        if n_msg == 0 or n_req == 0:
            ledger = CostLedger()
            return self._finish(out, n_msg, n_req, ledger, iterations=0)

        block = self.messages_per_iteration
        n_blocks = math.ceil(n_msg / block)
        unmatched = np.ones(n_req, dtype=bool)
        ledger = CostLedger()

        for b in range(n_blocks):
            lo, hi = b * block, min((b + 1) * block, n_msg)
            n_block = hi - lo
            n_warps = math.ceil(n_block / WARP_SIZE)
            cta = CTA(num_warps=n_warps,
                      shared_words=n_warps * self.window, ledger=ledger,
                      cta_id=b)
            cols = np.nonzero(unmatched)[0]
            plan = self._plan(n_block, cols.size)
            group = self._overlap_group(plan)
            # Per-lane message masks persist across window chunks: a message
            # matched in an earlier chunk must stay consumed for the rest of
            # the block (Algorithm 2 keeps the mask in registers).
            lanes = cta.warps[0].lanes
            holds_row = lanes < n_warps
            mask = np.where(holds_row, (1 << WARP_SIZE) - 1, 0).astype(np.int64)
            block_exhausted = False
            for chunk_start in range(0, cols.size, self.window):
                chunk = cols[chunk_start:chunk_start + self.window]
                self._pedantic_scan(cta, messages, requests,
                                    lo, n_block, chunk, group)
                cta.syncthreads()
                block_exhausted = self._pedantic_reduce(
                    cta, chunk, out, lo, unmatched, group, n_warps, mask,
                    holds_row, n_block)
                cta.syncthreads()
                if block_exhausted:
                    break  # all of this block's messages are consumed
        return self._finish(out, n_msg, n_req, ledger, iterations=n_blocks)

    def _pedantic_scan(self, cta: CTA, messages: EnvelopeBatch,
                       requests: EnvelopeBatch,
                       msg_base: int, n_block: int, chunk: np.ndarray,
                       group: str | None) -> None:
        """Algorithm 1: every warp votes its lanes' messages per column."""
        cta.ledger.phase("scan", active_warps=cta.num_warps,
                         overlap_group=group)
        for warp in cta.warps:
            lane_msg = msg_base + warp.warp_id * WARP_SIZE + warp.lanes
            in_range = lane_msg - msg_base < n_block
            warp.active = in_range.copy()
            warp._issue("gmem_load", 2)  # coalesced 64-bit envelope fetch
            for i, j in enumerate(chunk):
                req = requests[int(j)]
                warp._issue("smem_load", 1)  # broadcast request word
                pred = _accepts_vector(req, messages, lane_msg, in_range)
                warp._issue("alu", 1)
                vote = warp.ballot(pred)
                cta.shared.store(
                    np.array([warp.warp_id * self.window + i]),
                    np.array([vote]))
            warp.active = np.ones(WARP_SIZE, dtype=bool)

    def _pedantic_reduce(self, cta: CTA, chunk: np.ndarray, out: np.ndarray,
                         msg_base: int, unmatched: np.ndarray,
                         group: str | None, n_warps: int,
                         mask: np.ndarray, holds_row: np.ndarray,
                         n_block: int) -> bool:
        """Algorithm 2: one warp reduces the chunk's columns in order.

        Returns True once every message of the block has been matched
        (the early-exit condition shared with the fast path)."""
        cta.ledger.phase("reduce", active_warps=1, overlap_group=group)
        warp = cta.warps[0]
        lanes = warp.lanes
        full = (1 << WARP_SIZE) - 1
        for i, j in enumerate(chunk):
            addrs = np.minimum(lanes, n_warps - 1) * self.window + i
            votes = cta.shared.load(addrs)
            votes = np.where(holds_row, votes, 0)
            masked = warp.op(votes & mask, count=1)
            bidders = warp.ballot(masked != 0)
            warp.op(masked, count=3)  # ffs compare, index arithmetic, branch
            if bidders:
                w = ffs32(bidders) - 1
                lane_match = ffs32(int(masked[w])) - 1
                out[j] = msg_base + w * WARP_SIZE + lane_match
                mask[w] &= ~(1 << lane_match)
                unmatched[j] = False
                warp.op(masked, count=3)
                warp._issue("smem_store", 1)
                consumed = sum(
                    bin(full & ~int(m)).count("1")
                    for m, h in zip(mask, holds_row) if h)
                if consumed == n_block:
                    warp._issue("gmem_store", 2)
                    return True
        # coalesced flush of the chunk's staged results
        warp._issue("gmem_store", 2)
        return False


def _pack_block_votes(block_matrix: np.ndarray, n_warps: int,
                      warp_size: int = WARP_SIZE) -> np.ndarray:
    """Collapse a (block_msgs x n_req) boolean matrix into per-warp vote words."""
    n_block, n_req = block_matrix.shape
    padded = np.zeros((n_warps * warp_size, n_req), dtype=bool)
    padded[:n_block] = block_matrix
    lanes = padded.reshape(n_warps, warp_size, n_req)
    weights = (1 << np.arange(warp_size, dtype=np.int64))[None, :, None]
    return (lanes * weights).sum(axis=1)


def _accepts_vector(req, messages: EnvelopeBatch, lane_msg: np.ndarray,
                    in_range: np.ndarray) -> np.ndarray:
    """Per-lane predicate: does ``req`` accept each lane's message?"""
    idx = np.where(in_range, lane_msg, 0)
    src_ok = (req.src == -1) | (messages.src[idx] == req.src)
    tag_ok = (req.tag == -1) | (messages.tag[idx] == req.tag)
    comm_ok = messages.comm[idx] == req.comm
    return src_ok & tag_ok & comm_ok & in_range
