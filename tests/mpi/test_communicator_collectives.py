"""Communicators and BSP collectives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relaxations import RelaxationSet
from repro.mpi import (Cluster, Communicator, alltoall, barrier, bcast,
                       gather, reduce)


def make_comm(p: int, **kw) -> Communicator:
    return Communicator(Cluster(p, **kw))


class TestCommunicator:
    def test_world_defaults(self):
        comm = make_comm(4)
        assert comm.size == 4
        assert comm.global_rank(2) == 2
        assert comm.local_rank(3) == 3

    def test_subset_translation(self):
        c = Cluster(6)
        comm = Communicator(c, comm_id=1, members=[4, 2, 0])
        assert comm.size == 3
        assert comm.global_rank(0) == 4
        assert comm.local_rank(2) == 1

    def test_validation(self):
        c = Cluster(2)
        with pytest.raises(ValueError):
            Communicator(c, members=[0, 0])
        with pytest.raises(ValueError):
            Communicator(c, members=[5])
        with pytest.raises(ValueError):
            Communicator(c, comm_id=-1)

    def test_isolation_between_communicators(self):
        """Same src/tag on different communicators never cross-match."""
        c = Cluster(2)
        comm_a = Communicator(c, comm_id=0)
        comm_b = Communicator(c, comm_id=1)
        req_b = comm_b.irecv(1, 0, tag=5)
        comm_a.isend(0, 1, b"on-a", tag=5)
        assert not req_b.test()
        req_a = comm_a.irecv(1, 0, tag=5)
        assert req_a.wait() == b"on-a"
        comm_b.isend(0, 1, b"on-b", tag=5)
        assert req_b.wait() == b"on-b"

    def test_split(self):
        comm = make_comm(4)
        subs = comm.split({0: 0, 1: 1, 2: 0, 3: 1})
        assert subs[0].members == [0, 2]
        assert subs[1].members == [1, 3]
        assert subs[0].comm_id != subs[1].comm_id != comm.comm_id

    def test_sub_communicator_traffic(self):
        comm = make_comm(4)
        sub = comm.split({0: 0, 1: 0, 2: 1, 3: 1})[1]  # ranks 2,3
        req = sub.irecv(1, 0, tag=0)  # local 1 = cluster 3
        sub.isend(0, 1, b"q", tag=0)
        assert req.wait() == b"q"


class TestCommIdAllocation:
    """Regression: sibling and nested splits must never collide.

    The old ``comm_id + 1 + i`` scheme gave two sibling splits from the
    same parent overlapping comm values, silently aliasing unrelated
    traffic into one matching tuple.
    """

    def test_sibling_splits_never_collide(self):
        comm = make_comm(4)
        first = comm.split({0: 0, 1: 1, 2: 0, 3: 1})
        second = comm.split({0: 0, 1: 0, 2: 1, 3: 1})
        ids = [c.comm_id for c in first.values()] \
            + [c.comm_id for c in second.values()] + [comm.comm_id]
        assert len(set(ids)) == len(ids)

    def test_nested_splits_never_collide(self):
        comm = make_comm(8)
        halves = comm.split({l: l // 4 for l in range(8)})
        quarters = []
        for half in halves.values():
            quarters.extend(
                half.split({l: l // 2 for l in range(half.size)}).values())
        ids = [comm.comm_id] + [c.comm_id for c in halves.values()] \
            + [c.comm_id for c in quarters]
        assert len(set(ids)) == len(ids)

    def test_sibling_split_traffic_is_isolated(self):
        """The bug's observable symptom: traffic on one split's color
        leaking into the sibling split's same-color communicator."""
        comm = make_comm(4)
        a = comm.split({0: 0, 1: 0, 2: 1, 3: 1})[0]   # ranks 0,1
        b = comm.split({0: 0, 1: 0, 2: 1, 3: 1})[0]   # same members
        req_b = b.irecv(1, 0, tag=3)
        a.isend(0, 1, b"on-a", tag=3)
        assert not req_b.test()
        assert a.irecv(1, 0, tag=3).wait() == b"on-a"

    def test_hand_constructed_ids_advance_allocator(self):
        c = Cluster(2)
        Communicator(c, comm_id=7)
        comm = Communicator(c, comm_id=0)
        assert comm.split({0: 0, 1: 0})[0].comm_id > 7

    def test_exhaustion_raises(self):
        from repro.core.envelope import MAX_COMM
        c = Cluster(2)
        comm = Communicator(c, comm_id=MAX_COMM)
        with pytest.raises(ValueError, match="exhausted"):
            comm.split({0: 0, 1: 0})


class TestReservedTagRange:
    """Application point-to-point traffic must stay below the
    collective tag range; collectives use the unchecked entry points."""

    def test_isend_rejects_reserved_tags(self):
        from repro.mpi.communicator import COLLECTIVE_TAG_BASE
        comm = make_comm(2)
        with pytest.raises(ValueError, match="reserved collective"):
            comm.isend(0, 1, b"x", tag=COLLECTIVE_TAG_BASE)

    def test_irecv_rejects_reserved_tags(self):
        from repro.core.envelope import MAX_TAG
        comm = make_comm(2)
        with pytest.raises(ValueError, match="reserved collective"):
            comm.irecv(1, 0, tag=MAX_TAG)

    def test_any_tag_still_legal_on_receive(self):
        from repro.core.envelope import ANY_TAG
        comm = make_comm(2)   # default relaxations support wildcards
        req = comm.irecv(1, 0, tag=ANY_TAG)
        comm.isend(0, 1, b"w", tag=9)
        assert req.wait() == b"w"

    def test_boundary_tag_is_legal(self):
        from repro.mpi.communicator import COLLECTIVE_TAG_BASE
        comm = make_comm(2)
        req = comm.irecv(1, 0, tag=COLLECTIVE_TAG_BASE - 1)
        comm.isend(0, 1, b"edge", tag=COLLECTIVE_TAG_BASE - 1)
        assert req.wait() == b"edge"

    def test_collectives_still_use_reserved_tags(self):
        """Collectives keep working through coll_* despite the check."""
        comm = make_comm(4)
        assert bcast(comm, 1, "v") == ["v"] * 4
        barrier(comm)


class TestCollectives:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
    def test_barrier_all_sizes(self, p):
        barrier(make_comm(p))  # must terminate without deadlock

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_bcast(self, p):
        comm = make_comm(p)
        for root in range(p):
            assert bcast(comm, root, ("v", root)) == [("v", root)] * p

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_gather(self, p):
        comm = make_comm(p)
        vals = [f"r{i}" for i in range(p)]
        for root in range(p):
            assert gather(comm, root, vals) == vals

    @pytest.mark.parametrize("p", [1, 2, 4, 5])
    def test_alltoall(self, p):
        comm = make_comm(p)
        send = [[(i, j) for j in range(p)] for i in range(p)]
        out = alltoall(comm, send)
        for j in range(p):
            for i in range(p):
                assert out[j][i] == (i, j)

    @pytest.mark.parametrize("p", [1, 2, 3, 6, 8])
    def test_reduce_sum(self, p):
        comm = make_comm(p)
        vals = list(range(1, p + 1))
        for root in range(p):
            assert reduce(comm, root, vals, lambda a, b: a + b) == sum(vals)

    def test_reduce_noncommutative_order(self):
        """Tree reduction of string concatenation must respect rank order
        relative to the root for associative ops."""
        comm = make_comm(4)
        got = reduce(comm, 0, ["a", "b", "c", "d"], lambda a, b: a + b)
        assert sorted(got) == list("abcd") and got[0] == "a"

    def test_shape_validation(self):
        comm = make_comm(3)
        with pytest.raises(ValueError):
            gather(comm, 0, [1, 2])
        with pytest.raises(ValueError):
            reduce(comm, 0, [1], lambda a, b: a + b)
        with pytest.raises(ValueError):
            alltoall(comm, [[1, 2], [3, 4]])

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_bcast_property(self, p, root_seed):
        comm = make_comm(p)
        root = root_seed % p
        payload = list(range(root))
        assert bcast(comm, root, payload) == [payload] * p

    def test_collectives_under_relaxed_matching(self):
        """Collectives use concrete src/tags, so they run unchanged under
        the strictest relaxation set (the paper's BSP argument)."""
        comm = make_comm(4, relaxations=RelaxationSet(
            wildcards=False, ordering=False))
        barrier(comm)
        assert bcast(comm, 1, 42) == [42] * 4
        assert reduce(comm, 0, [1, 1, 1, 1], lambda a, b: a + b) == 4

    def test_collective_after_p2p_same_tag_space(self):
        """Reserved collective tags never collide with application tags."""
        comm = make_comm(2)
        req = comm.irecv(1, 0, tag=0)
        barrier(comm)
        comm.isend(0, 1, b"app", tag=0)
        assert req.wait() == b"app"
