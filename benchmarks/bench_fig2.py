"""Figure 2: UMQ depth distribution per application (queue replay).

Paper: "Most of the applications' queues range below 512 entries.  EXACT
MultiGrid and CESAR NEKBONE have the longest queues with the mean across
all ranks being 2,000 (median at 1,500) and 4,000 (median at 1,800)
entries, respectively."  PRQ depths are similar to UMQ depths.
"""

from __future__ import annotations

import pytest

from repro.bench import Table, anchor, ascii_histogram, write_result
from repro.traces import app_names, figure2_summary, generate_trace

LONG_QUEUE_APPS = {"cesar_nekbone", "exact_multigrid"}


def figure2_rows():
    """Queue-replay summary per application at default scale."""
    return {name: figure2_summary(generate_trace(name))
            for name in app_names()}


def test_report_figure2():
    rows = figure2_rows()
    table = Table(
        title="Figure 2 -- per-rank max queue depth statistics "
              "(replayed from traces)",
        columns=["application", "UMQ mean", "UMQ median", "UMQ max",
                 "PRQ mean", "PRQ median", "unexpected%"])
    for name, row in rows.items():
        table.add(name,
                  f"{row['umq_max_mean']:.0f}",
                  f"{row['umq_max_median']:.0f}",
                  row["umq_max_max"],
                  f"{row['prq_max_mean']:.0f}",
                  f"{row['prq_max_median']:.0f}",
                  f"{row['unexpected_fraction'] * 100:.0f}%")
    table.note("paper: most apps below 512; MultiGrid mean ~2000 / median "
               "~1500; NEKBONE mean ~4000 / median ~1800")
    write_result("fig2", table.show())

    nek = rows["cesar_nekbone"]
    assert nek["umq_max_mean"] == pytest.approx(
        anchor("trace/nekbone_umq_mean"), rel=0.15)
    assert nek["umq_max_median"] == pytest.approx(
        anchor("trace/nekbone_umq_median"), rel=0.15)
    mg = rows["exact_multigrid"]
    assert mg["umq_max_mean"] == pytest.approx(
        anchor("trace/multigrid_umq_mean"), rel=0.15)
    assert mg["umq_max_median"] == pytest.approx(
        anchor("trace/multigrid_umq_median"), rel=0.15)
    for name, row in rows.items():
        if name not in LONG_QUEUE_APPS:
            assert row["umq_max_mean"] < 512, name


def test_report_figure2_distribution():
    """The figure itself: per-rank max UMQ depth distributions rendered
    as text histograms (the paper shows these as per-app distributions)."""
    from repro.traces.queue_replay import replay
    sections = []
    for app in ("exmatex_lulesh", "exact_cns", "exact_multigrid",
                "cesar_nekbone"):
        states = replay(generate_trace(app))
        depths = [s.umq_stats.max_depth for s in states]
        sections.append(ascii_histogram(
            depths, bins=[0, 8, 64, 512, 2048, 8192],
            title=f"{app}: per-rank max UMQ depth ({len(depths)} ranks)"))
    text = ("Figure 2 (distribution view)\n" + "=" * 28 + "\n"
            + "\n".join(sections))
    print("\n" + text)
    write_result("fig2_distribution", text)
    assert "exact_multigrid" in text


def test_perf_queue_replay(benchmark):
    trace = generate_trace("exmatex_lulesh", n_ranks=27, steps=4)
    summary = benchmark(figure2_summary, trace)
    assert summary["umq_max_mean"] >= 0


def test_perf_queue_replay_deep(benchmark):
    trace = generate_trace("exact_multigrid", n_ranks=8, steps=1)
    summary = benchmark(figure2_summary, trace)
    assert summary["umq_max_mean"] > 100


if __name__ == "__main__":
    test_report_figure2()
    test_report_figure2_distribution()
