"""Reliability protocol and progress watchdog for the GAS transport.

:mod:`repro.mpi.faults` breaks the link; this module repairs it.  The
protocol is the classic sliding-window recipe MPI transports run over
lossy fabrics (cf. MPI Advance's resilience layers), charged in
*simulated* time so the paper's cost model stays honest:

* **Sequence numbers** -- every frame carries its per-``(src, dst)``
  sequence number (the same counter the matcher's pair-ordering
  guarantee is built on) plus a header checksum.
* **Receiver state** -- per-pair cursor of the next expected sequence
  number.  In-order frames are released to the endpoint immediately;
  out-of-order frames are buffered and released when the gap fills
  (restoring pair order under reordering and delay); frames at or below
  the cursor are duplicates and are filtered (exactly-once); checksum
  mismatches are recorded and dropped (corruption becomes a detected
  loss).
* **Acks and retransmission** -- the receiver returns a cumulative ack
  per pair; the sender keeps unacked frames in a retransmit buffer and
  resends on timeout with exponential backoff and a bounded retry
  budget.  Acks travel the same lossy link (they share the drop rate);
  a lost ack is repaired by the next retransmission/re-ack cycle.
  Exhausting the budget raises :class:`DeliveryFailure`.
* **Timing charges** -- every retransmission is charged the same wire
  cost as a first transmission, and every ack is charged as a small
  control frame, so fault recovery shows up in ``transfer_seconds`` /
  ``wire_busy_seconds`` exactly like real traffic would.  The protocol
  clock advances by ``tick_seconds`` per cluster progress pass.

The module also hosts the **progress watchdog**: :class:`StallReport`
(queue depths, outstanding sequence numbers, oldest unmatched envelope
per rank) and :class:`StallError`, raised by
:meth:`repro.mpi.process.Cluster.drain` instead of a bare
``RuntimeError`` when the cluster fails to quiesce.

When no fault plan is installed the network never instantiates this
layer, so the reliable path is *zero-cost when idle*: fault-free runs
produce bit-identical figures.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

__all__ = ["ReliabilityConfig", "ReliabilityLayer", "DeliveryFailure",
           "Frame", "StallReport", "StallError"]

if TYPE_CHECKING:  # pragma: no cover
    from .faults import FaultPlan
    from .network import GASNetwork, MessageDescriptor


class DeliveryFailure(RuntimeError):
    """A frame exhausted its retry budget (link declared dead)."""

    def __init__(self, src: int, dst: int, seq: int, attempts: int) -> None:
        super().__init__(
            f"frame seq={seq} on link {src}->{dst} undelivered after "
            f"{attempts} attempts; retry budget exhausted")
        self.src = src
        self.dst = dst
        self.seq = seq
        self.attempts = attempts


@dataclass(frozen=True)
class ReliabilityConfig:
    """Knobs of the retransmission protocol.

    Attributes
    ----------
    timeout_seconds:
        Base retransmit timeout (simulated seconds from transmission to
        the first resend when no ack arrives).
    backoff:
        Multiplier applied to the timeout per failed attempt
        (exponential backoff, capped at ``max_backoff``).
    max_retries:
        Retransmissions allowed per frame before
        :class:`DeliveryFailure`.
    max_backoff:
        Upper bound on the backoff multiplier.
    ack_bytes:
        Modelled size of one cumulative-ack control frame.
    tick_seconds:
        Simulated time one network tick (= one cluster progress pass)
        advances the protocol clock; default is one NVLink-class round
        trip.
    """

    timeout_seconds: float = 10e-6
    backoff: float = 2.0
    max_retries: int = 12
    max_backoff: float = 64.0
    ack_bytes: int = 8
    tick_seconds: float = 2.6e-6

    def __post_init__(self) -> None:
        if self.timeout_seconds <= 0 or self.tick_seconds <= 0:
            raise ValueError("timeout_seconds and tick_seconds must be "
                             "positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")


@dataclass
class Frame:
    """One descriptor on the wire, with protocol header fields."""

    desc: "MessageDescriptor"
    seq: int
    checksum: int
    deadline: float
    attempts: int = 1


def header_checksum(desc: "MessageDescriptor", seq: int) -> int:
    """CRC over the immutable header words (what corruption damages)."""
    packed = (f"{desc.src},{desc.dst},{desc.tag},{desc.comm},"
              f"{desc.nbytes},{int(desc.eager)},{seq}").encode()
    return zlib.crc32(packed)


class _TxChannel:
    """Sender-side per-pair state: retransmit buffer."""

    __slots__ = ("unacked",)

    def __init__(self) -> None:
        self.unacked: dict[int, Frame] = {}


class _RxChannel:
    """Receiver-side per-pair state: cursor + out-of-order buffer."""

    __slots__ = ("expected", "buffer")

    def __init__(self) -> None:
        self.expected = 0
        self.buffer: dict[int, "MessageDescriptor"] = {}


class ReliabilityLayer:
    """Exactly-once, per-pair-ordered delivery over a faulty link.

    Owned by :class:`~repro.mpi.network.GASNetwork` when a fault plan is
    installed; never constructed on the fault-free fast path.
    """

    def __init__(self, network: "GASNetwork", plan: "FaultPlan",
                 config: ReliabilityConfig | None = None) -> None:
        self.net = network
        self.plan = plan
        self.cfg = config if config is not None else ReliabilityConfig()
        self.ledger = plan.ledger
        self._tx: dict[tuple[int, int], _TxChannel] = {}
        self._rx: dict[tuple[int, int], _RxChannel] = {}
        #: delayed frames: (release_tick, insertion_order, frame)
        self._inflight: list[tuple[int, int, Frame]] = []
        self._inflight_order = 0
        #: one reorder slot per pair: frame held until the next transmit
        self._reorder: dict[tuple[int, int], Frame] = {}
        self.tick_count = 0
        self.now = 0.0
        self.retransmits = 0
        self.acks_sent = 0
        self.give_ups = 0
        self.recovery_seconds = 0.0

    # -- sender entry point -----------------------------------------------------

    def send(self, desc: "MessageDescriptor") -> None:
        """Track ``desc`` for retransmission and put it on the wire.

        Called by the network *after* the pair sequence number is
        assigned and the first transmission's wire time is charged.
        """
        pair = (desc.src, desc.dst)
        frame = Frame(desc=desc, seq=desc.seq,
                      checksum=header_checksum(desc, desc.seq),
                      deadline=self.now + self.cfg.timeout_seconds)
        self._tx.setdefault(pair, _TxChannel()).unacked[frame.seq] = frame
        self._transmit(frame)

    # -- the wire ---------------------------------------------------------------

    def _transmit(self, frame: Frame) -> None:
        """Push one frame through the fault plan onto the wire."""
        src, dst = frame.desc.src, frame.desc.dst
        pair = (src, dst)
        d = self.plan.decide(src, dst)
        if d.corrupt:
            self.ledger.record("corrupt", src, dst, frame.seq,
                               self.tick_count)
            # the damaged header arrives; the pristine copy stays in the
            # retransmit buffer for recovery
            self._arrive(replace(frame,
                                 checksum=frame.checksum ^ 0x5A5A5A5A))
            return
        if d.drop:
            self.ledger.record("drop", src, dst, frame.seq, self.tick_count)
            return
        if d.duplicate:
            self.ledger.record("duplicate", src, dst, frame.seq,
                               self.tick_count)
            self._arrive(frame)
        if d.delay_ticks:
            self.ledger.record("delay", src, dst, frame.seq, self.tick_count)
            heapq.heappush(self._inflight,
                           (self.tick_count + d.delay_ticks,
                            self._inflight_order, frame))
            self._inflight_order += 1
            return
        if d.reorder and pair not in self._reorder:
            self.ledger.record("reorder", src, dst, frame.seq,
                               self.tick_count)
            self._reorder[pair] = frame
            return
        self._arrive(frame)
        held = self._reorder.pop(pair, None)
        if held is not None:
            # the held frame was just overtaken; it arrives now
            self._arrive(held)

    # -- receiver ----------------------------------------------------------------

    def _arrive(self, frame: Frame) -> None:
        desc = frame.desc
        pair = (desc.src, desc.dst)
        if frame.checksum != header_checksum(desc, frame.seq):
            self.ledger.record("corrupt_detected", desc.src, desc.dst,
                               frame.seq, self.tick_count)
            return  # no ack: the sender's timeout recovers it
        rx = self._rx.get(pair)
        if rx is None:
            rx = self._rx[pair] = _RxChannel()
        if frame.seq == rx.expected:
            self._release(desc)
            rx.expected += 1
            while rx.expected in rx.buffer:
                self._release(rx.buffer.pop(rx.expected))
                rx.expected += 1
        elif frame.seq > rx.expected:
            if frame.seq in rx.buffer:
                self.ledger.record("dup_filtered", desc.src, desc.dst,
                                   frame.seq, self.tick_count)
            else:
                self.ledger.record("ooo_buffered", desc.src, desc.dst,
                                   frame.seq, self.tick_count)
                rx.buffer[frame.seq] = desc
        else:
            self.ledger.record("dup_filtered", desc.src, desc.dst,
                               frame.seq, self.tick_count)
        self._send_ack(pair, rx.expected - 1)

    def _release(self, desc: "MessageDescriptor") -> None:
        """Hand an in-order, exactly-once descriptor to the endpoint
        (ring-full backpressure still applies downstream)."""
        self.net.deliver_or_hold(desc)

    def _send_ack(self, pair: tuple[int, int], ack_seq: int) -> None:
        """Cumulative ack ``dst -> src``; subject to the link drop rate."""
        src, dst = pair
        self.acks_sent += 1
        self.recovery_seconds += self.net.charge_control(self.cfg.ack_bytes)
        if self.plan.decide_ack_drop(dst, src):
            self.ledger.record("ack_drop", dst, src, ack_seq,
                               self.tick_count)
            return
        tx = self._tx.get(pair)
        if tx is None:
            return
        for seq in [s for s in tx.unacked if s <= ack_seq]:
            del tx.unacked[seq]

    # -- the protocol clock -------------------------------------------------------

    def tick(self) -> None:
        """One progress pass: release delayed frames, flush reorder
        holds, and retransmit anything past its deadline."""
        self.tick_count += 1
        self.now += self.cfg.tick_seconds
        while self._inflight and self._inflight[0][0] <= self.tick_count:
            _, _, frame = heapq.heappop(self._inflight)
            self._arrive(frame)
        for pair in list(self._reorder):
            # no younger frame came along to overtake; deliver it late
            self._arrive(self._reorder.pop(pair))
        for pair, tx in self._tx.items():
            for seq in list(tx.unacked):
                frame = tx.unacked.get(seq)
                if frame is None or frame.deadline > self.now:
                    continue
                frame.attempts += 1
                if frame.attempts > self.cfg.max_retries + 1:
                    self.give_ups += 1
                    self.ledger.record("give_up", pair[0], pair[1], seq,
                                       self.tick_count)
                    del tx.unacked[seq]
                    raise DeliveryFailure(pair[0], pair[1], seq,
                                          frame.attempts - 1)
                self.retransmits += 1
                self.ledger.record("retransmit", pair[0], pair[1], seq,
                                   self.tick_count)
                self.recovery_seconds += self.net.charge_retransmit(
                    frame.desc)
                scale = min(self.cfg.backoff ** (frame.attempts - 1),
                            self.cfg.max_backoff)
                frame.deadline = self.now + self.cfg.timeout_seconds * scale
                if self.net._obs is not None:
                    self.net._obs.count("net.backoff_seconds",
                                        self.cfg.timeout_seconds * scale)
                self._transmit(frame)

    # -- introspection -------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """Is recovery still in progress anywhere?"""
        return (any(tx.unacked for tx in self._tx.values())
                or bool(self._inflight) or bool(self._reorder)
                or any(rx.buffer for rx in self._rx.values()))

    def outstanding(self) -> dict[tuple[int, int], tuple[int, ...]]:
        """Unacked sequence numbers per pair (for stall reports)."""
        return {pair: tuple(sorted(tx.unacked))
                for pair, tx in self._tx.items() if tx.unacked}

    def stats(self) -> dict:
        """Protocol counters plus the fault ledger summary."""
        return {
            "retransmits": self.retransmits,
            "acks_sent": self.acks_sent,
            "give_ups": self.give_ups,
            "recovery_seconds": self.recovery_seconds,
            "inflight": len(self._inflight),
            "reorder_held": len(self._reorder),
            "rx_buffered": sum(len(rx.buffer) for rx in self._rx.values()),
            "unacked": sum(len(tx.unacked) for tx in self._tx.values()),
            "ledger": self.ledger.summary(),
        }


# -- progress watchdog ---------------------------------------------------------------


@dataclass
class StallReport:
    """Structured snapshot of a cluster that failed to quiesce.

    Built by :meth:`repro.mpi.process.Cluster.stall_report`; carried by
    :class:`StallError` so a diagnosing caller gets data, not prose.
    """

    rounds: int
    ranks: list[dict] = field(default_factory=list)
    held_messages: int = 0
    outstanding: dict[tuple[int, int], tuple[int, ...]] = \
        field(default_factory=dict)
    reliability: dict | None = None
    #: metrics-registry snapshot at stall time, when the cluster has an
    #: observability handle attached (None otherwise)
    obs_metrics: dict | None = None

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [f"cluster failed to quiesce after {self.rounds} progress "
                 "rounds; stall report:"]
        for info in self.ranks:
            if not (info["umq_depth"] or info["prq_depth"]
                    or info["rings_queued"] or info["spill_pending"]):
                continue
            lines.append(
                f"  rank {info['rank']}: umq={info['umq_depth']} "
                f"prq={info['prq_depth']} rings={info['rings_queued']} "
                f"spill={info['spill_pending']}")
            if info["oldest_unmatched"] is not None:
                o = info["oldest_unmatched"]
                lines.append(
                    f"    oldest unmatched message: src={o['src']} "
                    f"tag={o['tag']} comm={o['comm']} seq={o['seq']}")
            if info["oldest_posted"] is not None:
                o = info["oldest_posted"]
                lines.append(
                    f"    oldest posted receive:    src={o['src']} "
                    f"tag={o['tag']} comm={o['comm']} seq={o['seq']}")
        if self.held_messages:
            lines.append(f"  network: {self.held_messages} descriptors held "
                         "by flow control")
        for (src, dst), seqs in self.outstanding.items():
            shown = ", ".join(map(str, seqs[:8]))
            more = f" (+{len(seqs) - 8} more)" if len(seqs) > 8 else ""
            lines.append(f"  link {src}->{dst}: outstanding seqs "
                         f"[{shown}]{more}")
        if self.reliability is not None:
            r = self.reliability
            lines.append(
                f"  reliability: retransmits={r['retransmits']} "
                f"inflight={r['inflight']} rx_buffered={r['rx_buffered']} "
                f"unacked={r['unacked']}")
        if self.obs_metrics is not None:
            counters = self.obs_metrics.get("counters", {})
            shown = ", ".join(f"{k}={v:g}"
                              for k, v in list(counters.items())[:8])
            lines.append(f"  obs counters: {shown or '(none)'}")
        if len(lines) == 1:
            lines.append("  (all queues empty -- runaway traffic loop?)")
        return "\n".join(lines)


class StallError(RuntimeError):
    """Raised by ``Cluster.drain`` when progress stalls; carries the
    :class:`StallReport` (``exc.report``) for programmatic diagnosis."""

    def __init__(self, report: StallReport) -> None:
        super().__init__(report.render())
        self.report = report
