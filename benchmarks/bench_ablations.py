"""Ablation benches for the design choices DESIGN.md calls out.

AB1 -- compaction cost (paper: ~10% of the matching rate, Section VI-B);
AB2 -- match-fraction sensitivity (paper: rate ~ linear in matched
       fraction, Section VI-B);
AB3 -- hash function and table-sizing choices (paper picks Jenkins'
       6-shift hash and a 5:1 primary:secondary split, flagging the
       policy space as future work, Section VI-C);
AB4 -- receive-queue order sensitivity beyond 1024 entries (paper:
       "a reversed queue would decrease performance", Section V-B).
"""

from __future__ import annotations

import pytest

from repro.bench import (Table, format_rate, matching_workload,
                         ordered_workload, partial_workload,
                         reversed_workload, write_result)
from repro.core.hash_matching import HashMatcher, HashTableConfig
from repro.core.hashing import HASH_FUNCTIONS
from repro.core.matrix_matching import MatrixMatcher


# -- AB1: compaction --------------------------------------------------------------


def test_report_ablation_compaction():
    table = Table(
        title="AB1 -- compaction cost vs queue length (Pascal, matrix)",
        columns=["queue", "no compaction", "with compaction", "penalty"])
    penalties = {}
    for n in (128, 256, 512, 1024, 2048):
        msgs, reqs = matching_workload(n)
        off = MatrixMatcher(compaction=False).match(
            msgs, reqs).matches_per_second()
        on = MatrixMatcher(compaction=True).match(
            msgs, reqs).matches_per_second()
        penalties[n] = 1 - on / off
        table.add(n, format_rate(off), format_rate(on),
                  f"{penalties[n] * 100:.0f}%")
    table.note("paper: compaction reduces the matching rate by about 10%")
    write_result("ablation_compaction", table.show())
    assert 0.05 < penalties[1024] < 0.2


# -- AB2: match fraction ------------------------------------------------------------


def test_report_ablation_match_fraction():
    table = Table(
        title="AB2 -- matrix matching rate vs matchable fraction "
              "(Pascal, 1024 elements)",
        columns=["matchable", "matched", "rate", "relative"])
    base = None
    rels = {}
    for frac in (1.0, 0.75, 0.5, 0.25):
        msgs, reqs = partial_workload(1024, frac)
        o = MatrixMatcher().match(msgs, reqs)
        rate = o.matches_per_second()
        base = rate if base is None else base
        rels[frac] = rate / base
        table.add(f"{frac * 100:.0f}%", o.matched_count, format_rate(rate),
                  f"{rels[frac]:.2f}")
    table.note("paper: 'performance decreases linearly with the number of "
               "matched messages per iteration'")
    write_result("ablation_matchfrac", table.show())
    assert rels[0.5] == pytest.approx(0.5, abs=0.12)
    assert rels[0.25] == pytest.approx(0.25, abs=0.12)


# -- AB3: hash function & table sizing ---------------------------------------------------


def test_report_ablation_hash_function():
    msgs, reqs = matching_workload(1024, seed=1234)
    table = Table(
        title="AB3a -- hash function choice (Pascal, 1024 elements, 1 CTA)",
        columns=["hash", "rounds", "collisions", "rate"])
    results = {}
    for name in HASH_FUNCTIONS:
        cfg = HashTableConfig(hash_name=name)
        o = HashMatcher(config=cfg).match(msgs, reqs)
        results[name] = o
        table.add(name, o.iterations, o.meta["collisions"],
                  format_rate(o.matches_per_second()))
        assert o.matched_count == 1024  # every policy stays correct
    table.note("paper picks Jenkins' 6-shift; alternates are future work")
    write_result("ablation_hash_function", table.show())
    # mixing functions behave comparably; the identity baseline needs the
    # most rounds on structured keys
    assert (results["identity"].iterations
            >= max(results["jenkins"].iterations,
                   results["fnv1a"].iterations))


def test_report_ablation_table_sizing():
    msgs, reqs = matching_workload(1024, seed=1234)
    table = Table(
        title="AB3b -- two-level table sizing (Pascal, 1024 elements)",
        columns=["scale", "primary:secondary", "rounds", "rate"])
    rates = {}
    for scale in (1.1, 1.5, 2.0, 4.0):
        for ratio in (1, 5, 15):
            cfg = HashTableConfig(scale=scale, primary_factor=ratio)
            o = HashMatcher(config=cfg).match(msgs, reqs)
            rates[(scale, ratio)] = o.matches_per_second()
            table.add(scale, f"{ratio}:1", o.iterations,
                      format_rate(o.matches_per_second()))
            assert o.matched_count == 1024
    table.note("paper uses a primary table five times the secondary")
    write_result("ablation_table_sizing", table.show())
    # more slots can never make matching dramatically slower
    assert rates[(4.0, 5)] >= 0.8 * rates[(1.1, 5)]


# -- AB4: queue order beyond 1024 ------------------------------------------------------


def test_report_ablation_queue_order():
    """Order sensitivity appears only past the 1024-message capacity:
    each matrix iteration early-exits once its message block is consumed,
    so an in-order queue visits ~1024 columns per block while a reversed
    queue drags every block through all still-open columns."""
    table = Table(
        title="AB4 -- receive-queue order beyond the 1024-message matrix "
              "capacity (Pascal, unique tuples)",
        columns=["queue", "in order", "random", "reversed"])
    rows = {}
    for n in (1024, 2048, 4096):
        o_ord = MatrixMatcher().match(*ordered_workload(n))
        o_rnd = MatrixMatcher().match(*matching_workload(n, n_ranks=1024,
                                                         n_tags=4096))
        o_rev = MatrixMatcher().match(*reversed_workload(n))
        rows[n] = (o_ord.matches_per_second(), o_rnd.matches_per_second(),
                   o_rev.matches_per_second())
        table.add(n, *(format_rate(r) for r in rows[n]))
        assert o_rev.matched_count == n
    table.note("paper: above 1024 'the order of the receive requests "
               "matters ... a reversed queue would decrease performance'")
    write_result("ablation_order", table.show())
    # at/below capacity order cannot matter much; beyond it, it must
    assert rows[1024][2] == pytest.approx(rows[1024][0], rel=0.35)
    assert rows[4096][2] < 0.8 * rows[4096][0]
    assert rows[4096][0] >= rows[4096][1] >= rows[4096][2]


# -- AB5: scan window size ---------------------------------------------------------------


def test_report_ablation_window():
    """The scan/reduce pipeline's window (chunk) size: small windows pay
    a barrier per few columns; large windows amortize barriers but eat
    the CTA's shared memory (2 buffers x 32 warps x window x 4 B), which
    caps the window at 192 columns under the 48 KiB limit."""
    table = Table(
        title="AB5 -- scan window size vs matching rate (Pascal, matrix)",
        columns=["window", "smem (KiB)", "rate @512", "rate @1024"])
    rates = {}
    for window in (8, 16, 32, 64, 128, 192):
        r = {}
        for n in (512, 1024):
            msgs, reqs = matching_workload(n)
            r[n] = MatrixMatcher(window=window).match(
                msgs, reqs).matches_per_second()
        rates[window] = r
        table.add(window, f"{2 * 32 * window * 4 / 1024:.0f}",
                  format_rate(r[512]), format_rate(r[1024]))
    table.note("the default window of 64 sits at the knee of the "
               "sync-amortization curve at a quarter of the shared-memory "
               "budget")
    write_result("ablation_window", table.show())
    # monotone improvement with diminishing returns
    assert rates[64][512] > rates[8][512] * 1.3
    assert rates[192][512] < rates[64][512] * 1.15
    # oversized windows are rejected, not silently mis-modeled
    with pytest.raises(ValueError):
        MatrixMatcher(window=256)


# -- host-side perf ---------------------------------------------------------------------


def test_perf_hash_identity_worstcase(benchmark):
    msgs, reqs = matching_workload(512, seed=1234)
    matcher = HashMatcher(config=HashTableConfig(hash_name="identity"))
    outcome = benchmark(matcher.match, msgs, reqs)
    assert outcome.matched_count == 512


def test_perf_matrix_reversed(benchmark):
    msgs, reqs = reversed_workload(2048)
    matcher = MatrixMatcher()
    outcome = benchmark(matcher.match, msgs, reqs)
    assert outcome.matched_count == 2048


if __name__ == "__main__":
    test_report_ablation_window()
    test_report_ablation_compaction()
    test_report_ablation_match_fraction()
    test_report_ablation_hash_function()
    test_report_ablation_table_sizing()
    test_report_ablation_queue_order()
