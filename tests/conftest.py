"""Shared fixtures and workload builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.envelope import ANY_SOURCE, ANY_TAG, EnvelopeBatch


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests needing other seeds construct their own."""
    return np.random.default_rng(0xC0FFEE)


def permuted_pair(rng: np.random.Generator, n: int, n_ranks: int = 16,
                  n_tags: int = 8, comm: int = 0,
                  ) -> tuple[EnvelopeBatch, EnvelopeBatch]:
    """A fully-matchable workload: requests are a permutation of messages."""
    msgs = EnvelopeBatch.random(n, n_ranks=n_ranks, n_tags=n_tags, comm=comm,
                                rng=rng)
    reqs = msgs.take(rng.permutation(n))
    return msgs, reqs


def with_wildcards(rng: np.random.Generator, reqs: EnvelopeBatch,
                   p_src: float = 0.15, p_tag: float = 0.15) -> EnvelopeBatch:
    """Replace a random subset of request fields with wildcards."""
    n = len(reqs)
    src = np.where(rng.random(n) < p_src, ANY_SOURCE, reqs.src)
    tag = np.where(rng.random(n) < p_tag, ANY_TAG, reqs.tag)
    return EnvelopeBatch(src, tag, reqs.comm)


def partial_match_pair(rng: np.random.Generator, n: int, match_fraction: float,
                       n_ranks: int = 16, n_tags: int = 8,
                       ) -> tuple[EnvelopeBatch, EnvelopeBatch]:
    """A workload where only ``match_fraction`` of requests can match.

    Non-matching requests point at ranks beyond the message rank space, so
    they can never be satisfied.
    """
    msgs = EnvelopeBatch.random(n, n_ranks=n_ranks, n_tags=n_tags, rng=rng)
    reqs = msgs.take(rng.permutation(n))
    n_dead = n - int(round(match_fraction * n))
    dead = rng.choice(n, size=n_dead, replace=False)
    src = reqs.src.copy()
    src[dead] = n_ranks + 1000  # unreachable rank
    return msgs, EnvelopeBatch(src, reqs.tag, reqs.comm)
