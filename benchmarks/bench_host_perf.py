"""Host throughput gate: how fast the *simulator itself* matches.

Not a paper figure.  Every other bench reports modeled GPU rates; this
one times the host-side fast paths (array-native reduce, blockwise scan,
vectorized hash rounds) and appends a labeled entry to
``BENCH_host_perf.json`` at the repository root so perf regressions are
visible PR-over-PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_host_perf.py [--quick]
        [--label LABEL] [--no-json] [--sizes N [N ...]]
        [--trace-out trace.json]

``--quick`` drops the 64k deep-queue point for CI smoke runs.
``--trace-out`` attaches the observability layer (``repro.obs``) to the
sweep, writes a Chrome/Perfetto ``trace.json`` (open it at
https://ui.perfetto.dev), and prints the tracer + metrics summary.
``--sanitize`` additionally runs every matcher (fast paths, plus the
matrix/hash pedantic per-warp paths) under ``repro.simt.sanitize`` and
prints the report; exits nonzero on any finding.
"""

from __future__ import annotations

import argparse

from repro.bench import Table, format_rate, write_result
from repro.bench.regression import (DEFAULT_SIZES, QUICK_SIZES,
                                    HostPerfRecord, append_entry,
                                    default_report_path, run_suite)


def host_perf_table(records: list[HostPerfRecord],
                    title: str = "Host-side simulator throughput") -> Table:
    table = Table(title=title,
                  columns=["matcher", "queue", "host time", "rate"])
    for r in records:
        table.add(r.matcher, r.n, f"{r.seconds:.3f}s",
                  format_rate(r.matches_per_second))
    table.note("wall-clock matches/s of the simulator on the host "
               "(best of repeats), not a modeled GPU rate")
    return table


def test_report_host_perf():
    """Smoke entry for ``pytest benchmarks/``: shallow queue only, and no
    report-file write so the committed BENCH_host_perf.json stays put."""
    records = run_suite(sizes=(1_000,), repeats=1)
    table = host_perf_table(records,
                            title="Host-side simulator throughput (smoke)")
    write_result("host_perf", table.show())
    assert len(records) == 3
    assert all(r.matched == 1_000 for r in records)
    assert all(r.matches_per_second > 0 for r in records)


def run_sanitized_sweep(n: int = 200) -> "SanitizerReport":
    """Run every shipped matcher under the sanitizer at a small size and
    return the combined report (clean == the kernels model no races,
    uninitialized reads, or ledger drift)."""
    from repro.bench.harness import matching_workload
    from repro.core.bucket_matching import BucketMatcher
    from repro.core.hash_matching import HashMatcher
    from repro.core.list_matching import ListMatcher
    from repro.core.matrix_matching import MatrixMatcher
    from repro.core.partitioned import PartitionedMatcher
    from repro.simt.sanitize import Sanitizer

    san = Sanitizer()
    msgs, reqs = matching_workload(n, seed=0)
    MatrixMatcher(warps_per_cta=2, window=8,
                  sanitize=san).match_pedantic(msgs, reqs)
    HashMatcher(sanitize=san).match_pedantic(msgs, reqs)
    for matcher in (MatrixMatcher(sanitize=san),
                    PartitionedMatcher(n_queues=4, sanitize=san),
                    HashMatcher(sanitize=san),
                    BucketMatcher(sanitize=san),
                    ListMatcher(sanitize=san)):
        matcher.match(msgs, reqs)
    return san.finalize()


def main(argv: list[str] | None = None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="shallow queues only (CI smoke)")
    ap.add_argument("--label", default="dev",
                    help="entry label in BENCH_host_perf.json")
    ap.add_argument("--no-json", action="store_true",
                    help="print the table without touching the report file")
    ap.add_argument("--sizes", type=int, nargs="+", default=None,
                    help="queue depths to sweep (overrides --quick)")
    ap.add_argument("--trace-out", default=None, metavar="PATH",
                    help="write a Chrome/Perfetto trace.json of the sweep")
    ap.add_argument("--sanitize", action="store_true",
                    help="run the matchers under the SIMT sanitizer and "
                         "fail on any finding")
    args = ap.parse_args(argv)

    obs = None
    if args.trace_out is not None:
        from repro.obs import Observability
        from repro.simt.gpu import PASCAL_GTX1080
        obs = Observability.enabled()
        obs.tracer.metadata.update(PASCAL_GTX1080.trace_metadata())

    if args.sizes is not None:
        sizes = tuple(args.sizes)
    else:
        sizes = QUICK_SIZES if args.quick else DEFAULT_SIZES
    records = run_suite(
        sizes=sizes, obs=obs,
        progress=lambda r: print(f"  {r.matcher} n={r.n}: {r.seconds:.3f}s "
                                 f"{format_rate(r.matches_per_second)}"))
    host_perf_table(records).show()
    if obs is not None:
        from repro.obs.report import summary
        path = obs.tracer.write_chrome(args.trace_out)
        print(f"wrote Perfetto trace to {path}")
        print(summary(obs))
    if not args.no_json:
        append_entry(records, label=args.label)
        print(f"appended entry {args.label!r} to {default_report_path()}")
    if args.sanitize:
        report = run_sanitized_sweep()
        print(report.summary())
        report.assert_clean()   # nonzero exit on any finding


if __name__ == "__main__":
    main()
