"""Reference MPI matching oracle.

A deliberately simple, obviously-correct implementation of MPI matching
semantics, used as ground truth by the test suite and by
:mod:`repro.core.engine` when semantics checking is enabled.

MPI's guarantee (non-overtaking): if two messages from the same (source,
communicator) both match a posted receive, the one sent first is received
first.  Equivalently, processing receive requests in posted order and
giving each the *earliest* queued message it matches yields the unique
correct assignment.  That is exactly what :func:`reference_match` does,
in O(n_requests * n_messages).
"""

from __future__ import annotations

import numpy as np

from .envelope import ANY_SOURCE, ANY_TAG, EnvelopeBatch
from .result import NO_MATCH, MatchOutcome

__all__ = ["reference_match", "check_mpi_ordering", "SemanticsViolation"]


class SemanticsViolation(AssertionError):
    """An outcome violates MPI matching semantics."""


def reference_match(messages: EnvelopeBatch,
                    requests: EnvelopeBatch) -> MatchOutcome:
    """Match ``requests`` against ``messages`` with full MPI semantics.

    Messages are in arrival order (the UMQ), requests in posted order (the
    PRQ).  Returns the canonical assignment.
    """
    messages.assert_concrete("message queue")
    n_msg, n_req = len(messages), len(requests)
    taken = np.zeros(n_msg, dtype=bool)
    out = np.full(n_req, NO_MATCH, dtype=np.int64)
    for j in range(n_req):
        r_src = int(requests.src[j])
        r_tag = int(requests.tag[j])
        r_comm = int(requests.comm[j])
        ok = ~taken
        ok &= messages.comm == r_comm
        if r_src != ANY_SOURCE:
            ok &= messages.src == r_src
        if r_tag != ANY_TAG:
            ok &= messages.tag == r_tag
        hits = np.nonzero(ok)[0]
        if hits.size:
            out[j] = hits[0]
            taken[hits[0]] = True
    return MatchOutcome(request_to_message=out, n_messages=n_msg,
                        n_requests=n_req, meta={"oracle": True})


def check_mpi_ordering(messages: EnvelopeBatch, requests: EnvelopeBatch,
                       outcome: MatchOutcome) -> None:
    """Validate an outcome against full MPI semantics.

    Checks, raising :class:`SemanticsViolation` on failure:

    1. every reported pair actually matches (src/tag/comm agree modulo
       wildcards);
    2. no message is double-matched (already enforced by
       :class:`~repro.core.result.MatchOutcome`);
    3. non-overtaking: the outcome assigns exactly the same pairs as the
       reference oracle.  (For fully MPI-compliant matching the canonical
       assignment is unique, so equality is the correct check.)
    """
    ref = reference_match(messages, requests)
    got = outcome.request_to_message
    for j in range(len(requests)):
        m = int(got[j])
        if m == NO_MATCH:
            continue
        req = requests[j]
        msg = messages[m]
        if not req.accepts(msg):
            raise SemanticsViolation(
                f"request {j} {req} reported matching message {m} {msg}, "
                f"but the envelopes do not match")
    if not np.array_equal(ref.request_to_message, got):
        diff = np.nonzero(ref.request_to_message != got)[0][:8]
        raise SemanticsViolation(
            "assignment differs from MPI reference at requests "
            f"{diff.tolist()}: expected "
            f"{ref.request_to_message[diff].tolist()}, got {got[diff].tolist()}")


def check_relaxed(messages: EnvelopeBatch, requests: EnvelopeBatch,
                  outcome: MatchOutcome, *, require_complete: bool = False,
                  ) -> None:
    """Validate an outcome under *relaxed* (unordered) semantics.

    Without ordering guarantees any pairing of envelope-compatible
    messages and requests is legal; we check pair validity, no
    double-matching, and -- optionally -- completeness (a perfect matching
    exists in the synthetic workloads where every message has a partner,
    so an incomplete result would indicate a lost message).
    """
    got = outcome.request_to_message
    for j in range(len(requests)):
        m = int(got[j])
        if m == NO_MATCH:
            continue
        if not requests[j].accepts(messages[m]):
            raise SemanticsViolation(
                f"request {j} {requests[j]} paired with incompatible "
                f"message {m} {messages[m]}")
    if require_complete:
        ref = reference_match(messages, requests)
        if outcome.matched_count < ref.matched_count:
            raise SemanticsViolation(
                f"outcome matched {outcome.matched_count} requests but "
                f"{ref.matched_count} were matchable")
