"""Serve state plane: persistent sessions and checkpoint/restore.

Three pieces live here, all built on the same columnar representation
the data plane already uses:

* **Persistent-UMQ sessions** (:class:`SessionState`) -- a ``session``
  tenant's unmatched envelopes survive flushes: the flush's UMQ and PRQ
  are exported as packed column blocks
  (:meth:`~repro.core.engine.MatchingEngine.export_unmatched`) and
  prepended to the next flush's batch, FIFO.  Carry-over is pure
  ``take``/``concatenate`` column work over views that keep the cached
  packed64 key column -- no per-item re-marshalling, the same
  zero-re-pack contract the columnar data plane pins.  Per-tenant caps
  (oldest-first shedding) and an age bound (flushes survived) keep a
  dead tuple from pinning session memory forever.

* **A versioned, CRC-guarded binary snapshot codec**
  (:func:`dumps` / :func:`loads`) -- a small tagged format (none, bool,
  arbitrary-precision int, float64, str, bytes, ndarray, list, tuple,
  insertion-ordered dict) with a magic header, a format version, and a
  CRC32 trailer.  Arbitrary-precision ints matter: the event loop's
  PCG64 generator state carries 128-bit counters that a fixed-width
  encoding would corrupt.  No pickle anywhere -- a snapshot is data,
  never code.

* **Snapshot builders** (:func:`snapshot_service` /
  :func:`restore_service`, :func:`export_tenant` /
  :func:`install_tenant`, :func:`restore_shard`) -- a deterministic
  deep capture of everything a bit-identical continuation needs: every
  tenant engine's lattice position and demotion log, accumulator
  contents and epoch counters, profiler windows, autotuner hysteresis,
  session carry-over, the event loop's ``(vt, seq)`` cursor and RNG
  state, and the service's result/ticket ledgers.  Restoring a snapshot
  taken at flush *k* and replaying the remaining stream produces
  outcomes identical to the uninterrupted run (pinned by
  ``tests/serve/test_state.py``); the same builders power crash
  recovery and live migration in :mod:`repro.serve.supervisor`.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..core.engine import MatchingEngine
from ..core.envelope import EnvelopeBatch
from ..core.relaxations import RelaxationSet
from ..core.result import MatchOutcome
from ..simt.gpu import GPUSpec, PASCAL_GTX1080
from .admission import AdmissionPolicy
from .autotuner import Autotuner
from .batching import BatchAccumulator, BatchPolicy, concat_batches
from .messages import FlushResult, ServeRequest, TenantSpec, Ticket
from .profiler import StreamProfiler

__all__ = ["SnapshotError", "SNAPSHOT_MAGIC", "SNAPSHOT_VERSION",
           "dumps", "loads", "SessionState",
           "export_tenant", "install_tenant",
           "snapshot_service", "restore_service", "restore_shard"]


# ---------------------------------------------------------------------------
# Tagged binary codec
# ---------------------------------------------------------------------------

#: Snapshot file magic (8 bytes).
SNAPSHOT_MAGIC = b"RSRVSNAP"

#: Format version; bumped on any incompatible layout change.  A restore
#: refuses a version it does not know instead of misreading it.
SNAPSHOT_VERSION = 1

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03      # u32 length + little-endian signed magnitude bytes
_T_FLOAT = 0x04    # IEEE-754 binary64
_T_STR = 0x05      # u32 length + UTF-8
_T_BYTES = 0x06    # u32 length + raw
_T_NDARRAY = 0x07  # dtype str + ndim + u64 dims + u64 length + raw buffer
_T_LIST = 0x08     # u32 count + items
_T_TUPLE = 0x09    # u32 count + items
_T_DICT = 0x0A     # u32 count + (key, value) pairs, insertion order


class SnapshotError(ValueError):
    """A snapshot could not be encoded or decoded (corruption, truncation,
    bad magic/version/CRC, or an unencodable object)."""


def _enc(obj, out: bytearray) -> None:
    if obj is None:
        out.append(_T_NONE)
    elif obj is True or (isinstance(obj, np.bool_) and bool(obj)):
        out.append(_T_TRUE)
    elif obj is False or isinstance(obj, np.bool_):
        out.append(_T_FALSE)
    elif isinstance(obj, (int, np.integer)):
        v = int(obj)
        raw = v.to_bytes(max(1, (v.bit_length() + 8) // 8),
                         "little", signed=True)
        out.append(_T_INT)
        out += struct.pack("<I", len(raw))
        out += raw
    elif isinstance(obj, (float, np.floating)):
        out.append(_T_FLOAT)
        out += struct.pack("<d", float(obj))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(_T_STR)
        out += struct.pack("<I", len(raw))
        out += raw
    elif isinstance(obj, (bytes, bytearray)):
        out.append(_T_BYTES)
        out += struct.pack("<I", len(obj))
        out += bytes(obj)
    elif isinstance(obj, np.ndarray):
        if obj.dtype == object:
            raise SnapshotError("object-dtype arrays are not snapshotable")
        a = np.ascontiguousarray(obj)
        dt = a.dtype.str.encode("ascii")
        raw = a.tobytes()
        out.append(_T_NDARRAY)
        out += struct.pack("<I", len(dt))
        out += dt
        out += struct.pack("<I", a.ndim)
        for dim in a.shape:
            out += struct.pack("<Q", dim)
        out += struct.pack("<Q", len(raw))
        out += raw
    elif isinstance(obj, (list, tuple)):
        out.append(_T_LIST if isinstance(obj, list) else _T_TUPLE)
        out += struct.pack("<I", len(obj))
        for item in obj:
            _enc(item, out)
    elif isinstance(obj, dict):
        out.append(_T_DICT)
        out += struct.pack("<I", len(obj))
        for key, value in obj.items():
            _enc(key, out)
            _enc(value, out)
    else:
        raise SnapshotError(f"cannot snapshot object of type "
                            f"{type(obj).__name__}")


def _need(data: bytes, pos: int, n: int) -> None:
    if pos + n > len(data):
        raise SnapshotError("truncated snapshot payload")


def _dec(data: bytes, pos: int) -> tuple[object, int]:
    _need(data, pos, 1)
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        _need(data, pos, 4)
        (n,) = struct.unpack_from("<I", data, pos)
        pos += 4
        _need(data, pos, n)
        return int.from_bytes(data[pos:pos + n], "little",
                              signed=True), pos + n
    if tag == _T_FLOAT:
        _need(data, pos, 8)
        (v,) = struct.unpack_from("<d", data, pos)
        return v, pos + 8
    if tag in (_T_STR, _T_BYTES):
        _need(data, pos, 4)
        (n,) = struct.unpack_from("<I", data, pos)
        pos += 4
        _need(data, pos, n)
        raw = data[pos:pos + n]
        return (raw.decode("utf-8") if tag == _T_STR else raw), pos + n
    if tag == _T_NDARRAY:
        _need(data, pos, 4)
        (n,) = struct.unpack_from("<I", data, pos)
        pos += 4
        _need(data, pos, n)
        dtype = np.dtype(data[pos:pos + n].decode("ascii"))
        pos += n
        _need(data, pos, 4)
        (ndim,) = struct.unpack_from("<I", data, pos)
        pos += 4
        shape = []
        for _ in range(ndim):
            _need(data, pos, 8)
            (dim,) = struct.unpack_from("<Q", data, pos)
            shape.append(dim)
            pos += 8
        _need(data, pos, 8)
        (nbytes,) = struct.unpack_from("<Q", data, pos)
        pos += 8
        _need(data, pos, nbytes)
        arr = np.frombuffer(data[pos:pos + nbytes],
                            dtype=dtype).reshape(shape).copy()
        return arr, pos + nbytes
    if tag in (_T_LIST, _T_TUPLE):
        _need(data, pos, 4)
        (n,) = struct.unpack_from("<I", data, pos)
        pos += 4
        items = []
        for _ in range(n):
            item, pos = _dec(data, pos)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), pos
    if tag == _T_DICT:
        _need(data, pos, 4)
        (n,) = struct.unpack_from("<I", data, pos)
        pos += 4
        out: dict = {}
        for _ in range(n):
            key, pos = _dec(data, pos)
            value, pos = _dec(data, pos)
            out[key] = value
        return out, pos
    raise SnapshotError(f"unknown snapshot type tag 0x{tag:02x}")


def dumps(obj) -> bytes:
    """Encode an object tree into the versioned, CRC-guarded wire form."""
    payload = bytearray()
    _enc(obj, payload)
    payload = bytes(payload)
    return (SNAPSHOT_MAGIC
            + struct.pack("<HQ", SNAPSHOT_VERSION, len(payload))
            + payload
            + struct.pack("<I", zlib.crc32(payload)))


def loads(data: bytes) -> object:
    """Decode :func:`dumps` output, verifying magic, version, length, and
    CRC before touching the payload."""
    head = len(SNAPSHOT_MAGIC) + 10
    if len(data) < head + 4:
        raise SnapshotError("snapshot shorter than its header")
    if data[:len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        raise SnapshotError("bad snapshot magic")
    version, length = struct.unpack_from("<HQ", data, len(SNAPSHOT_MAGIC))
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(f"unsupported snapshot version {version} "
                            f"(expected {SNAPSHOT_VERSION})")
    if len(data) != head + length + 4:
        raise SnapshotError("snapshot length mismatch")
    payload = data[head:head + length]
    (crc,) = struct.unpack_from("<I", data, head + length)
    if zlib.crc32(payload) != crc:
        raise SnapshotError("snapshot CRC mismatch (corrupt payload)")
    obj, pos = _dec(payload, 0)
    if pos != length:
        raise SnapshotError("trailing bytes after snapshot payload")
    return obj


# ---------------------------------------------------------------------------
# Persistent-UMQ sessions
# ---------------------------------------------------------------------------

class SessionState:
    """Carry-over queues of one ``session`` tenant.

    Between flushes the tenant's unmatched envelopes live here as two
    packed column blocks -- the UMQ (messages nobody received yet) and
    the PRQ (receives nothing arrived for) -- each with a parallel
    ``born`` column recording the flush sequence that first admitted the
    envelope.  ``born`` drives both shedding axes:

    * **age**: at flush *j*, a carried envelope born at flush *b* has
      survived ``j - b`` subsequent flushes; once that reaches
      ``max_age_flushes`` it is shed;
    * **cap**: if the combined depth still exceeds ``max_carryover``,
      the oldest envelopes (smallest ``born``, FIFO within a flush) are
      shed first.

    Everything is column work over ``take`` views that keep the cached
    packed64 key column -- carry-over never re-marshals an envelope.
    """

    def __init__(self, max_carryover: int = 4096,
                 max_age_flushes: int = 8) -> None:
        if max_carryover < 1:
            raise ValueError("max_carryover must be >= 1")
        if max_age_flushes < 1:
            raise ValueError("max_age_flushes must be >= 1")
        self.max_carryover = max_carryover
        self.max_age_flushes = max_age_flushes
        self.umq = EnvelopeBatch.empty()
        self.prq = EnvelopeBatch.empty()
        self.umq_born = np.array([], dtype=np.int64)
        self.prq_born = np.array([], dtype=np.int64)
        self.carried_total = 0
        self.shed_age_total = 0
        self.shed_cap_total = 0

    @classmethod
    def for_spec(cls, spec: TenantSpec) -> "SessionState":
        return cls(max_carryover=spec.session_max_carryover,
                   max_age_flushes=spec.session_max_age_flushes)

    @property
    def depth(self) -> int:
        """Carried envelopes pending re-match (UMQ + PRQ)."""
        return len(self.umq) + len(self.prq)

    # -- flush protocol ----------------------------------------------------------

    def merge(self, messages: EnvelopeBatch, requests: EnvelopeBatch,
              flush_seq: int) -> tuple[EnvelopeBatch, EnvelopeBatch,
                                       np.ndarray, np.ndarray, int, int]:
        """Prepend the carried columns to a flush's fresh batch, FIFO.

        Returns ``(messages, requests, born_msgs, born_reqs,
        n_carried_msgs, n_carried_reqs)`` where the born columns cover
        the *merged* batches (carried envelopes keep their original born
        flush; fresh ones are born at ``flush_seq``).  The carry blocks
        are cleared here; :meth:`retain` refills them after the match.
        """
        n_cm, n_cr = len(self.umq), len(self.prq)
        born_msgs = np.concatenate([
            self.umq_born,
            np.full(len(messages), flush_seq, dtype=np.int64)])
        born_reqs = np.concatenate([
            self.prq_born,
            np.full(len(requests), flush_seq, dtype=np.int64)])
        merged_m = concat_batches([self.umq, messages])
        merged_r = concat_batches([self.prq, requests])
        self.carried_total += n_cm + n_cr
        self.umq = EnvelopeBatch.empty()
        self.prq = EnvelopeBatch.empty()
        self.umq_born = np.array([], dtype=np.int64)
        self.prq_born = np.array([], dtype=np.int64)
        return merged_m, merged_r, born_msgs, born_reqs, n_cm, n_cr

    def retain(self, umq: EnvelopeBatch, prq: EnvelopeBatch,
               born_umq: np.ndarray, born_prq: np.ndarray,
               flush_seq: int) -> tuple[int, int]:
        """Keep a flush's unmatched columns for the next flush.

        Applies age shedding first, then the combined-depth cap
        (oldest ``born`` first, stable order within a flush).  Returns
        ``(shed_age, shed_cap)`` counts.
        """
        keep_m = (flush_seq - born_umq) < self.max_age_flushes
        keep_r = (flush_seq - born_prq) < self.max_age_flushes
        shed_age = int(np.count_nonzero(~keep_m)
                       + np.count_nonzero(~keep_r))
        if shed_age:
            umq = umq.take(np.nonzero(keep_m)[0])
            born_umq = born_umq[keep_m]
            prq = prq.take(np.nonzero(keep_r)[0])
            born_prq = born_prq[keep_r]
        shed_cap = 0
        total = len(umq) + len(prq)
        if total > self.max_carryover:
            shed_cap = total - self.max_carryover
            born_all = np.concatenate([born_umq, born_prq])
            keep_mask = np.ones(total, dtype=bool)
            keep_mask[np.argsort(born_all, kind="stable")[:shed_cap]] = False
            km, kr = keep_mask[:len(umq)], keep_mask[len(umq):]
            umq = umq.take(np.nonzero(km)[0])
            born_umq = born_umq[km]
            prq = prq.take(np.nonzero(kr)[0])
            born_prq = born_prq[kr]
        self.umq, self.prq = umq, prq
        self.umq_born, self.prq_born = born_umq, born_prq
        self.shed_age_total += shed_age
        self.shed_cap_total += shed_cap
        return shed_age, shed_cap

    # -- snapshot format ---------------------------------------------------------

    def export_state(self) -> dict:
        return {"max_carryover": self.max_carryover,
                "max_age_flushes": self.max_age_flushes,
                "umq": self.umq.state_dict(),
                "prq": self.prq.state_dict(),
                "umq_born": self.umq_born,
                "prq_born": self.prq_born,
                "carried_total": self.carried_total,
                "shed_age_total": self.shed_age_total,
                "shed_cap_total": self.shed_cap_total}

    @classmethod
    def from_state(cls, state: dict) -> "SessionState":
        session = cls(max_carryover=int(state["max_carryover"]),
                      max_age_flushes=int(state["max_age_flushes"]))
        session.umq = EnvelopeBatch.from_state_dict(state["umq"])
        session.prq = EnvelopeBatch.from_state_dict(state["prq"])
        session.umq_born = np.asarray(state["umq_born"], dtype=np.int64)
        session.prq_born = np.asarray(state["prq_born"], dtype=np.int64)
        session.carried_total = int(state["carried_total"])
        session.shed_age_total = int(state["shed_age_total"])
        session.shed_cap_total = int(state["shed_cap_total"])
        return session


# ---------------------------------------------------------------------------
# Message-type (de)serialization
# ---------------------------------------------------------------------------

def _spec_state(spec: TenantSpec) -> dict:
    return {"name": spec.name,
            "relaxations": (None if spec.relaxations is None
                            else spec.relaxations.label()),
            "ordering_required": spec.ordering_required,
            "autotune": spec.autotune,
            "n_queues": spec.n_queues,
            "n_ctas": spec.n_ctas,
            "session": spec.session,
            "session_max_carryover": spec.session_max_carryover,
            "session_max_age_flushes": spec.session_max_age_flushes,
            "partitioned": spec.partitioned,
            "span": spec.span}


def _spec_from(state: dict) -> TenantSpec:
    rel = state["relaxations"]
    return TenantSpec(
        name=str(state["name"]),
        relaxations=None if rel is None else RelaxationSet.from_label(rel),
        ordering_required=bool(state["ordering_required"]),
        autotune=bool(state["autotune"]),
        n_queues=int(state["n_queues"]),
        n_ctas=int(state["n_ctas"]),
        session=bool(state["session"]),
        session_max_carryover=int(state["session_max_carryover"]),
        session_max_age_flushes=int(state["session_max_age_flushes"]),
        partitioned=bool(state.get("partitioned", False)),
        span=int(state.get("span", 1)))


def _request_state(r: ServeRequest) -> dict:
    return {"tenant": r.tenant, "seq": r.seq, "arrival_vt": r.arrival_vt,
            "messages": r.messages.state_dict(),
            "requests": r.requests.state_dict()}


def _request_from(state: dict) -> ServeRequest:
    return ServeRequest(
        tenant=str(state["tenant"]), seq=int(state["seq"]),
        arrival_vt=float(state["arrival_vt"]),
        messages=EnvelopeBatch.from_state_dict(state["messages"]),
        requests=EnvelopeBatch.from_state_dict(state["requests"]))


def _ticket_state(t: Ticket) -> tuple:
    return (t.status, t.tenant, t.seq, t.retry_after_vt, t.reason)


def _ticket_from(state: tuple) -> Ticket:
    status, tenant, seq, retry_after_vt, reason = state
    return Ticket(status=str(status), tenant=str(tenant), seq=int(seq),
                  retry_after_vt=(None if retry_after_vt is None
                                  else float(retry_after_vt)),
                  reason=str(reason))


def _outcome_state(o: MatchOutcome) -> dict:
    return {"request_to_message": o.request_to_message,
            "n_messages": o.n_messages, "n_requests": o.n_requests,
            "seconds": o.seconds, "cycles": o.cycles,
            "iterations": o.iterations, "replicas": o.replicas,
            "meta": o.meta}


def _outcome_from(state: dict) -> MatchOutcome:
    return MatchOutcome(
        request_to_message=np.asarray(state["request_to_message"],
                                      dtype=np.int64),
        n_messages=int(state["n_messages"]),
        n_requests=int(state["n_requests"]),
        seconds=float(state["seconds"]), cycles=float(state["cycles"]),
        iterations=int(state["iterations"]),
        replicas=int(state["replicas"]), meta=dict(state["meta"]))


def _flush_result_state(r: FlushResult) -> dict:
    return {"tenant": r.tenant, "shard_id": r.shard_id,
            "flush_seq": r.flush_seq, "flush_vt": r.flush_vt,
            "outcome": _outcome_state(r.outcome),
            "covered_seqs": r.covered_seqs,
            "latencies_vt": r.latencies_vt,
            "engine_label": r.engine_label, "meta": r.meta}


def _flush_result_from(state: dict) -> FlushResult:
    return FlushResult(
        tenant=str(state["tenant"]), shard_id=int(state["shard_id"]),
        flush_seq=int(state["flush_seq"]),
        flush_vt=float(state["flush_vt"]),
        outcome=_outcome_from(state["outcome"]),
        covered_seqs=tuple(int(s) for s in state["covered_seqs"]),
        latencies_vt=tuple(float(v) for v in state["latencies_vt"]),
        engine_label=str(state["engine_label"]), meta=dict(state["meta"]))


# ---------------------------------------------------------------------------
# Tenant / shard / service snapshot builders
# ---------------------------------------------------------------------------

def export_tenant(ts) -> dict:
    """Deep state of one tenant (a :class:`~repro.serve.shard.TenantState`).

    Self-contained: :func:`install_tenant` can rebuild the tenant inside
    any shard -- the unit live migration serializes across shards.
    """
    acc = ts.accumulator.export_state()
    acc["pending"] = [_request_state(r) for r in acc["pending"]]
    return {"spec": _spec_state(ts.spec),
            "engine": ts.engine.export_state(),
            "accumulator": acc,
            "profiler": ts.profiler.export_state(),
            "autotuner": ts.autotuner.export_state(),
            "session": (None if ts.session is None
                        else ts.session.export_state()),
            "flush_seq": ts.flush_seq,
            "matched_total": ts.matched_total,
            "requests_total": ts.requests_total,
            "pending_retune_seconds": ts.pending_retune_seconds,
            "pending_retune_cycles": ts.pending_retune_cycles,
            "demotions_seen": ts.demotions_seen,
            "results": [_flush_result_state(r) for r in ts.results]}


def install_tenant(shard, state: dict):
    """Rebuild a tenant from :func:`export_tenant` inside ``shard``.

    Returns the new :class:`~repro.serve.shard.TenantState`, registered
    under its spec name (replacing any same-named tenant).
    """
    from .shard import TenantState  # local: shard.py imports this module

    spec = _spec_from(state["spec"])
    engine = MatchingEngine.from_state(state["engine"], gpu=shard.gpu,
                                       verify=shard.verify, obs=shard._obs)
    accumulator = BatchAccumulator(shard.batching)
    acc_state = dict(state["accumulator"])
    acc_state["pending"] = [_request_from(r) for r in acc_state["pending"]]
    accumulator.restore_state(acc_state)
    profiler = StreamProfiler(shard.profile_window)
    profiler.restore_state(state["profiler"])
    autotuner = Autotuner(spec, gpu=shard.gpu,
                          promote_after=shard.promote_after)
    autotuner.restore_state(state["autotuner"])
    ts = TenantState(
        spec=spec, engine=engine, accumulator=accumulator,
        profiler=profiler, autotuner=autotuner,
        flush_seq=int(state["flush_seq"]),
        matched_total=int(state["matched_total"]),
        requests_total=int(state["requests_total"]),
        pending_retune_seconds=float(state["pending_retune_seconds"]),
        pending_retune_cycles=float(state["pending_retune_cycles"]),
        demotions_seen=int(state["demotions_seen"]),
        results=[_flush_result_from(r) for r in state["results"]],
        session=(None if state["session"] is None
                 else SessionState.from_state(state["session"])))
    shard.tenants[spec.name] = ts
    return ts


def _shard_state(shard) -> dict:
    return {"shard_id": shard.shard_id,
            "admission_counters": shard.admission.export_state(),
            "migrating": dict(shard.migrating),
            "flushes_done": shard.flushes_done,
            "tenants": {name: export_tenant(ts)
                        for name, ts in shard.tenants.items()}}


def service_state(svc) -> dict:
    """The full service state tree (pre-encoding form)."""
    shard0 = svc.shards[0]
    pol = shard0.admission.policy
    return {
        "n_shards": len(svc.shards),
        "loop": svc.loop.export_state(),
        "placement": dict(svc._placement),
        "next_seq": svc._next_seq,
        "policies": {
            "admission": {"capacity": pol.capacity,
                          "soft_fraction": pol.soft_fraction,
                          "retry_after_vt": pol.retry_after_vt},
            "batching": {"max_envelopes": shard0.batching.max_envelopes,
                         "max_delay_vt": shard0.batching.max_delay_vt},
            "promote_after": shard0.promote_after,
            "profile_window": shard0.profile_window,
            "verify": shard0.verify,
        },
        "shards": [_shard_state(s) for s in svc.shards],
        "results": [_flush_result_state(r) for r in svc.results],
        "tickets": [_ticket_state(t) for t in svc.tickets],
    }


def snapshot_service(svc) -> bytes:
    """Snapshot a whole :class:`~repro.serve.service.MatchingService`.

    The returned bytes are the versioned, CRC-guarded binary form; feed
    them to :func:`restore_service` (full restore) or decode with
    :func:`loads` and hand one shard's portion to :func:`restore_shard`
    (crash recovery).
    """
    return dumps(service_state(svc))


def restore_service(data: bytes, gpu: GPUSpec = PASCAL_GTX1080,
                    obs=None, stages=None):
    """Rebuild a service from :func:`snapshot_service` bytes.

    The restored service continues **bit-identically**: same virtual
    clock, same pending timers, same RNG stream position, same engines,
    accumulators, profiler windows, hysteresis streaks, session
    carry-over, and ledgers.  Runtime-only handles (``gpu``, ``obs``,
    ``stages``) are supplied fresh -- they are environment, not state.
    """
    from .service import MatchingService  # local: avoid import cycle

    state = loads(data)
    pol = state["policies"]
    svc = MatchingService(
        n_shards=int(state["n_shards"]), gpu=gpu,
        admission=AdmissionPolicy(
            capacity=int(pol["admission"]["capacity"]),
            soft_fraction=float(pol["admission"]["soft_fraction"]),
            retry_after_vt=(None if pol["admission"]["retry_after_vt"] is None
                            else float(pol["admission"]["retry_after_vt"]))),
        batching=BatchPolicy(
            max_envelopes=int(pol["batching"]["max_envelopes"]),
            max_delay_vt=float(pol["batching"]["max_delay_vt"])),
        seed=int(state["loop"]["seed"]),
        promote_after=int(pol["promote_after"]),
        profile_window=int(pol["profile_window"]),
        verify=bool(pol["verify"]), obs=obs, stages=stages)
    svc.loop.restore_state(state["loop"])
    svc._placement = {str(k): int(v) for k, v in state["placement"].items()}
    svc._next_seq = int(state["next_seq"])
    for sstate in state["shards"]:
        _restore_shard_from(svc.shards[int(sstate["shard_id"])], sstate)
    svc.results = [_flush_result_from(r) for r in state["results"]]
    svc.tickets = [_ticket_from(t) for t in state["tickets"]]
    return svc


def _restore_shard_from(shard, sstate: dict) -> None:
    shard.admission.restore_state(sstate["admission_counters"])
    shard.migrating = {str(k): float(v)
                       for k, v in sstate["migrating"].items()}
    shard.flushes_done = int(sstate["flushes_done"])
    shard.tenants = {}
    for tstate in sstate["tenants"].values():
        install_tenant(shard, tstate)


def restore_shard(svc, shard_id: int, state: dict) -> list[str]:
    """Rebuild one shard of a live service from a decoded service state.

    The crash-recovery primitive: the rest of the service (clock, loop,
    other shards, result/ticket ledgers) keeps its *live* state -- only
    the crashed shard rolls back to the checkpoint.  The supervisor then
    reconciles the restored accumulators against the surviving flush
    ledger and replays its admission journal (see
    :mod:`repro.serve.supervisor`).  Returns the restored tenant names.
    """
    sstate = next((s for s in state["shards"]
                   if int(s["shard_id"]) == shard_id), None)
    if sstate is None:
        raise SnapshotError(f"snapshot holds no shard {shard_id}")
    _restore_shard_from(svc.shards[shard_id], sstate)
    return list(svc.shards[shard_id].tenants)
