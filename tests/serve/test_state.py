"""Serve state plane: snapshot codec, columnar session carry-over,
bit-identical checkpoint/restore, and vt-derived retry hints."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.envelope import EnvelopeBatch
from repro.serve import (AdmissionPolicy, BatchPolicy, MatchingService,
                         SessionState, SnapshotError, TenantSpec,
                         restore_service, run_supervised, snapshot_service,
                         workload_from_app)
from repro.serve.state import SNAPSHOT_MAGIC, dumps, loads
from tests.conftest import permuted_pair


# ---------------------------------------------------------------------------
# Tagged binary codec
# ---------------------------------------------------------------------------

class TestCodec:
    def test_round_trip_nested_structure(self):
        obj = {
            "none": None, "t": True, "f": False,
            "small": -7, "big": 2 ** 127 + 5, "neg_big": -(2 ** 80),
            "pi": 3.14159, "s": "snapshot ☃", "raw": b"\x00\xff",
            "i64": np.arange(6, dtype=np.int64),
            "f64": np.linspace(0.0, 1.0, 5),
            "bools": np.array([True, False, True]),
            "grid": np.arange(12, dtype=np.int32).reshape(3, 4),
            "seq": [1, (2, "three"), {"four": 4.0}],
        }
        rt = loads(dumps(obj))
        assert list(rt) == list(obj)          # insertion order preserved
        assert rt["none"] is None and rt["t"] is True and rt["f"] is False
        assert rt["big"] == 2 ** 127 + 5 and rt["neg_big"] == -(2 ** 80)
        assert rt["s"] == obj["s"] and rt["raw"] == obj["raw"]
        for key in ("i64", "f64", "bools", "grid"):
            assert rt[key].dtype == obj[key].dtype
            assert np.array_equal(rt[key], obj[key])
        assert rt["seq"] == obj["seq"]
        assert isinstance(rt["seq"][1], tuple)   # tuple tag, not list

    def test_rng_state_survives_the_codec(self):
        """PCG64 state carries 128-bit counters; a fixed-width integer
        encoding would corrupt it silently."""
        rng = np.random.default_rng(7)
        rng.random(13)                           # move off the seed point
        state = loads(dumps(rng.bit_generator.state))
        clone = np.random.default_rng(7)
        clone.bit_generator.state = state
        assert np.array_equal(rng.random(32), clone.random(32))

    def test_crc_detects_payload_corruption(self):
        blob = bytearray(dumps({"k": list(range(64))}))
        blob[len(blob) // 2] ^= 0x40
        with pytest.raises(SnapshotError, match="CRC"):
            loads(bytes(blob))

    def test_header_validation(self):
        blob = dumps([1, 2, 3])
        with pytest.raises(SnapshotError, match="magic"):
            loads(b"NOTASNAP" + blob[len(SNAPSHOT_MAGIC):])
        bad_version = bytearray(blob)
        bad_version[len(SNAPSHOT_MAGIC)] = 0xEE
        with pytest.raises(SnapshotError, match="version"):
            loads(bytes(bad_version))
        with pytest.raises(SnapshotError, match="length|shorter"):
            loads(blob[:-3])
        with pytest.raises(SnapshotError):
            loads(b"")

    def test_unencodable_objects_are_refused(self):
        with pytest.raises(SnapshotError, match="cannot snapshot"):
            dumps({"bad": {1, 2}})
        with pytest.raises(SnapshotError, match="object-dtype"):
            dumps(np.array([object()], dtype=object))


# ---------------------------------------------------------------------------
# EnvelopeBatch round-trip: the zero-re-pack contract
# ---------------------------------------------------------------------------

class TestEnvelopeBatchRoundTrip:
    def test_cached_packed_survives_slice_take_concat_and_codec(self, rng):
        """A column packed once at the loadgen boundary must come back
        from serialization still packed -- through slicing, ``take``,
        and ``concatenate`` -- never silently re-packed."""
        left, _ = permuted_pair(rng, 32)
        right, _ = permuted_pair(rng, 16)
        left.packed()                           # cache at the boundary
        right.packed()
        derived = left[4:28].take(np.arange(0, 24, 2)).concatenate(right)
        assert derived._packed is not None      # cache propagated

        state = loads(dumps(derived.state_dict()))
        assert state["packed"] is not None
        rt = EnvelopeBatch.from_state_dict(state)
        assert rt._packed is not None           # no re-pack needed
        assert np.array_equal(rt._packed, derived._packed)
        assert np.array_equal(rt.src, derived.src)
        assert np.array_equal(rt.tag, derived.tag)
        assert np.array_equal(rt.comm, derived.comm)

    def test_unpacked_batch_does_not_invent_a_cache(self, rng):
        batch, _ = permuted_pair(rng, 8)
        assert batch._packed is None
        rt = EnvelopeBatch.from_state_dict(loads(dumps(batch.state_dict())))
        assert rt._packed is None
        assert rt == batch


# ---------------------------------------------------------------------------
# Persistent-UMQ sessions
# ---------------------------------------------------------------------------

def _batch(src, tag):
    return EnvelopeBatch(src=list(src), tag=list(tag))


class TestSessionState:
    def test_merge_prepends_carried_columns_fifo(self):
        session = SessionState()
        session.umq = _batch([1, 2], [0, 0])
        session.umq_born = np.array([0, 0], dtype=np.int64)
        merged_m, merged_r, born_m, born_r, n_cm, n_cr = session.merge(
            _batch([3], [0]), _batch([9], [0]), flush_seq=2)
        assert (n_cm, n_cr) == (2, 0)
        assert merged_m.src.tolist() == [1, 2, 3]   # carried first (FIFO)
        assert born_m.tolist() == [0, 0, 2]
        assert merged_r.src.tolist() == [9] and born_r.tolist() == [2]
        assert session.depth == 0                   # cleared until retain

    def test_age_shed(self):
        session = SessionState(max_age_flushes=2)
        umq = _batch([1, 2, 3], [0, 0, 0])
        born = np.array([0, 3, 4], dtype=np.int64)
        shed_age, shed_cap = session.retain(
            umq, EnvelopeBatch.empty(), born,
            np.array([], dtype=np.int64), flush_seq=5)
        # born 0 survived 5 flushes, born 3 survived 2: both at the bound.
        assert (shed_age, shed_cap) == (2, 0)
        assert session.umq.src.tolist() == [3]
        assert session.umq_born.tolist() == [4]

    def test_cap_sheds_oldest_first(self):
        session = SessionState(max_carryover=2, max_age_flushes=100)
        umq = _batch([10, 11], [0, 0])
        prq = _batch([20, 21], [0, 0])
        shed_age, shed_cap = session.retain(
            umq, prq,
            np.array([3, 1], dtype=np.int64),
            np.array([0, 2], dtype=np.int64), flush_seq=4)
        assert (shed_age, shed_cap) == (0, 2)
        # born 0 (prq src 20) and born 1 (umq src 11) are the oldest.
        assert session.umq.src.tolist() == [10]
        assert session.prq.src.tolist() == [21]
        assert session.shed_cap_total == 2

    def test_carried_envelopes_match_in_a_later_flush(self):
        """Messages flushed unmatched in pass 1 must satisfy the
        requests of pass 2 -- the persistent-UMQ contract."""
        svc = MatchingService(
            batching=BatchPolicy(max_envelopes=4, max_delay_vt=1.0))
        svc.register(TenantSpec(name="t", autotune=False, session=True))
        msgs = _batch([0, 1, 2, 3], [5, 5, 5, 5])
        svc.submit("t", msgs, EnvelopeBatch.empty())     # size flush #1
        assert svc.results[0].outcome.matched_count == 0
        svc.submit("t", EnvelopeBatch.empty(), msgs)     # size flush #2
        assert len(svc.results) == 2
        second = svc.results[1]
        assert second.meta["carried_messages"] == 4
        assert second.outcome.matched_count == 4
        assert second.meta["carryover_umq"] == 0

    def test_stateless_tenant_drops_unmatched(self):
        svc = MatchingService(
            batching=BatchPolicy(max_envelopes=4, max_delay_vt=1.0))
        svc.register(TenantSpec(name="t", autotune=False))
        msgs = _batch([0, 1, 2, 3], [5, 5, 5, 5])
        svc.submit("t", msgs, EnvelopeBatch.empty())
        svc.submit("t", EnvelopeBatch.empty(), msgs)
        assert svc.results[1].outcome.matched_count == 0
        assert "carried_messages" not in svc.results[1].meta


# ---------------------------------------------------------------------------
# Snapshot / restore: bit-identical continuation
# ---------------------------------------------------------------------------

def _fingerprint(svc) -> dict:
    return {
        "results": [(r.tenant, r.shard_id, r.flush_seq, r.flush_vt,
                     r.covered_seqs, r.engine_label,
                     r.outcome.request_to_message.tolist(),
                     r.outcome.seconds, sorted(r.meta.items()))
                    for r in svc.results],
        "tickets": [(t.status, t.seq, t.retry_after_vt)
                    for t in svc.tickets],
        "report": svc.report(),
    }


def _drive(svc, arrivals):
    for arrival in arrivals:
        svc.submit(arrival.tenant, arrival.messages, arrival.requests,
                   at_vt=arrival.vt)


class TestSnapshotRestore:
    @pytest.fixture(scope="class")
    def workload(self):
        return workload_from_app("df_minife", rate_rps=4000.0, n_ranks=8,
                                 steps=2, chunk_envelopes=64, seed=3,
                                 session=True)

    def _fresh(self, workload):
        svc = MatchingService(n_shards=2, seed=5)
        for spec in workload.tenants:
            svc.register(spec)
        return svc

    @pytest.mark.parametrize("cut", [1, 3, 6])
    def test_restore_continues_bit_identically(self, workload, cut):
        """Snapshot at an arbitrary boundary, replay the remaining
        stream on both the original and the restored service: every
        outcome, ticket, latency, and counter must be identical."""
        svc = self._fresh(workload)
        _drive(svc, workload.arrivals[:cut])
        blob = snapshot_service(svc)
        twin = restore_service(blob)
        assert twin.now == svc.now
        for live in (svc, twin):
            _drive(live, workload.arrivals[cut:])
            live.drain()
        assert _fingerprint(twin) == _fingerprint(svc)

    def test_snapshot_of_restore_is_byte_identical(self, workload):
        svc = self._fresh(workload)
        _drive(svc, workload.arrivals[:4])
        blob = snapshot_service(svc)
        assert snapshot_service(restore_service(blob)) == blob

    def test_snapshot_is_deterministic(self, workload):
        svc = self._fresh(workload)
        _drive(svc, workload.arrivals[:4])
        assert snapshot_service(svc) == snapshot_service(svc)


# ---------------------------------------------------------------------------
# vt-derived retry hints
# ---------------------------------------------------------------------------

class TestRetryHints:
    def _svc(self):
        svc = MatchingService(
            admission=AdmissionPolicy(capacity=16, soft_fraction=0.5),
            batching=BatchPolicy(max_envelopes=10_000, max_delay_vt=0.5))
        svc.register(TenantSpec(name="t", autotune=False))
        return svc

    def test_hint_tracks_the_pending_flush_deadline(self):
        """The retryable hint is *derived from virtual time*: it points
        at the shard's earliest batch deadline, so two sheds at
        different instants hint the same absolute retry time."""
        svc = self._svc()
        msgs = _batch([0, 1, 2], [1, 2, 3])
        t0 = svc.submit("t", msgs, msgs, at_vt=1.0)   # deadline armed: 1.5
        assert t0.accepted
        t1 = svc.submit("t", msgs, msgs, at_vt=1.2)
        t2 = svc.submit("t", msgs, msgs, at_vt=1.4)
        assert t1.status == "retryable" and t2.status == "retryable"
        assert t1.retry_after_vt == pytest.approx(1.5)
        assert t2.retry_after_vt == pytest.approx(1.5)

    def test_hint_falls_back_to_batch_delay_when_idle(self):
        svc = self._svc()
        big = _batch(list(range(9)), list(range(9)))
        t0 = svc.submit("t", big, EnvelopeBatch.empty(), at_vt=2.0)
        assert t0.status == "retryable"               # soft watermark is 8
        assert t0.retry_after_vt == pytest.approx(2.5)

    def test_hints_replay_bit_identically(self):
        """Same seed, same workload, same supervised run: every ticket
        -- status, seq, and hint -- must replay identically."""
        workload = workload_from_app("df_amg", rate_rps=4000.0, n_ranks=8,
                                     steps=2, chunk_envelopes=64, seed=2)

        def one_run():
            svc = MatchingService(
                n_shards=2, seed=9,
                admission=AdmissionPolicy(capacity=256, soft_fraction=0.5))
            run = run_supervised(workload, svc=svc)
            return [(t.status, t.seq, t.retry_after_vt)
                    for t in run.tickets]
        first, second = one_run(), one_run()
        assert first == second
        assert any(status == "retryable" and hint is not None
                   for status, _, hint in first)
