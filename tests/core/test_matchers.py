"""Matcher correctness: every matcher against the MPI reference oracle.

The central invariants of the reproduction:

* matrix and partitioned matchers produce *exactly* the oracle assignment
  (full MPI semantics / no-src-wildcard semantics);
* the list baseline produces exactly the oracle assignment (it IS the
  textbook implementation);
* the hash matcher produces a valid unordered assignment that is
  complete on fully-matchable workloads;
* the pedantic warp-by-warp matrix path equals the fast path bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.envelope import ANY_SOURCE, ANY_TAG, EnvelopeBatch
from repro.core.hash_matching import HashMatcher, HashTableConfig
from repro.core.list_matching import ListMatcher
from repro.core.matrix_matching import MatrixMatcher
from repro.core.partitioned import PartitionedMatcher
from repro.core.result import NO_MATCH
from repro.core.verify import (SemanticsViolation, check_mpi_ordering,
                               check_relaxed, reference_match)
from tests.conftest import partial_match_pair, permuted_pair, with_wildcards


# Hypothesis strategy: a small workload with optional wildcards.
@st.composite
def workloads(draw, max_n=96, allow_wildcards=True):
    n_msg = draw(st.integers(min_value=0, max_value=max_n))
    n_req = draw(st.integers(min_value=0, max_value=max_n))
    n_ranks = draw(st.integers(min_value=1, max_value=8))
    n_tags = draw(st.integers(min_value=1, max_value=4))
    msrc = draw(st.lists(st.integers(0, n_ranks - 1), min_size=n_msg,
                         max_size=n_msg))
    mtag = draw(st.lists(st.integers(0, n_tags - 1), min_size=n_msg,
                         max_size=n_msg))
    lo = ANY_SOURCE if allow_wildcards else 0
    rsrc = draw(st.lists(st.integers(lo, n_ranks - 1), min_size=n_req,
                         max_size=n_req))
    tlo = ANY_TAG if allow_wildcards else 0
    rtag = draw(st.lists(st.integers(tlo, n_tags - 1), min_size=n_req,
                         max_size=n_req))
    return (EnvelopeBatch(msrc, mtag), EnvelopeBatch(rsrc, rtag))


class TestReferenceOracle:
    def test_empty(self):
        out = reference_match(EnvelopeBatch.empty(), EnvelopeBatch.empty())
        assert out.matched_count == 0

    def test_ordering_same_source(self):
        msgs = EnvelopeBatch(src=[1, 1, 1], tag=[7, 7, 7])
        reqs = EnvelopeBatch(src=[1, 1], tag=[7, 7])
        out = reference_match(msgs, reqs)
        # non-overtaking: earliest messages matched first, in request order
        assert list(out.request_to_message) == [0, 1]

    def test_wildcard_takes_earliest(self):
        msgs = EnvelopeBatch(src=[5, 3], tag=[1, 1])
        reqs = EnvelopeBatch(src=[ANY_SOURCE], tag=[1])
        out = reference_match(msgs, reqs)
        assert out.request_to_message[0] == 0

    def test_no_match_leaves_sentinel(self):
        msgs = EnvelopeBatch(src=[1], tag=[1])
        reqs = EnvelopeBatch(src=[2], tag=[1])
        out = reference_match(msgs, reqs)
        assert out.request_to_message[0] == NO_MATCH

    def test_checker_catches_bad_pairing(self):
        msgs = EnvelopeBatch(src=[1, 2], tag=[0, 0])
        reqs = EnvelopeBatch(src=[1, 2], tag=[0, 0])
        good = reference_match(msgs, reqs)
        check_mpi_ordering(msgs, reqs, good)
        bad = reference_match(msgs, reqs)
        bad.request_to_message = np.array([1, 0])  # swapped: envelope mismatch
        with pytest.raises(SemanticsViolation):
            check_mpi_ordering(msgs, reqs, bad)

    def test_checker_catches_overtaking(self):
        msgs = EnvelopeBatch(src=[1, 1], tag=[0, 0])
        reqs = EnvelopeBatch(src=[1, 1], tag=[0, 0])
        out = reference_match(msgs, reqs)
        out.request_to_message = np.array([1, 0])  # valid pairs, wrong order
        with pytest.raises(SemanticsViolation):
            check_mpi_ordering(msgs, reqs, out)


class TestMatrixMatcher:
    @given(workloads())
    @settings(max_examples=60, deadline=None)
    def test_equals_oracle(self, wl):
        msgs, reqs = wl
        out = MatrixMatcher().match(msgs, reqs)
        ref = reference_match(msgs, reqs)
        assert np.array_equal(out.request_to_message, ref.request_to_message)

    @given(workloads(max_n=64))
    @settings(max_examples=20, deadline=None)
    def test_pedantic_equals_fast(self, wl):
        msgs, reqs = wl
        m = MatrixMatcher(warps_per_cta=2, window=8)
        fast = m.match(msgs, reqs)
        slow = m.match_pedantic(msgs, reqs)
        assert np.array_equal(fast.request_to_message,
                              slow.request_to_message)

    def test_multiblock_ordering(self, rng):
        """Queues longer than the matrix capacity keep MPI order."""
        m = MatrixMatcher(warps_per_cta=1, window=4)  # capacity 32/iteration
        msgs, reqs = permuted_pair(rng, 150, n_ranks=5, n_tags=3)
        reqs = with_wildcards(rng, reqs)
        out = m.match(msgs, reqs)
        check_mpi_ordering(msgs, reqs, out)
        assert out.iterations == 5  # ceil(150/32)

    def test_all_wildcard_requests(self):
        msgs = EnvelopeBatch(src=[4, 2, 9], tag=[1, 2, 3])
        reqs = EnvelopeBatch(src=[ANY_SOURCE] * 3, tag=[ANY_TAG] * 3)
        out = MatrixMatcher().match(msgs, reqs)
        assert list(out.request_to_message) == [0, 1, 2]

    def test_duplicate_tuples_matched_in_order(self):
        msgs = EnvelopeBatch(src=[1] * 40, tag=[2] * 40)
        reqs = EnvelopeBatch(src=[1] * 40, tag=[2] * 40)
        out = MatrixMatcher(warps_per_cta=1).match(msgs, reqs)
        assert list(out.request_to_message) == list(range(40))

    def test_empty_sides(self):
        e = EnvelopeBatch.empty()
        b = EnvelopeBatch(src=[1], tag=[1])
        assert MatrixMatcher().match(e, b).matched_count == 0
        assert MatrixMatcher().match(b, e).matched_count == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MatrixMatcher(warps_per_cta=0)
        with pytest.raises(ValueError):
            MatrixMatcher(warps_per_cta=33)
        with pytest.raises(ValueError):
            MatrixMatcher(window=0)

    def test_wildcard_messages_rejected(self):
        msgs = EnvelopeBatch(src=[ANY_SOURCE], tag=[1])
        with pytest.raises(ValueError):
            MatrixMatcher().match(msgs, msgs)

    def test_adaptive_compaction_skips_sparse_matches(self, rng):
        """'In cases when the number of matches is very low, the bubbles
        can be tolerated and the compaction can be skipped.'"""
        msgs, reqs = partial_match_pair(rng, 1024, 0.1, n_ranks=64,
                                        n_tags=64)
        always = MatrixMatcher(compaction=True).match(msgs, reqs)
        adaptive = MatrixMatcher(compaction=True,
                                 compaction_policy="adaptive").match(
            msgs, reqs)
        assert np.array_equal(always.request_to_message,
                              adaptive.request_to_message)
        assert adaptive.seconds < always.seconds
        # dense matches: both compact, identical cost
        m2, r2 = permuted_pair(rng, 512)
        a2 = MatrixMatcher(compaction=True).match(m2, r2)
        b2 = MatrixMatcher(compaction=True,
                           compaction_policy="adaptive").match(m2, r2)
        assert a2.seconds == pytest.approx(b2.seconds)

    def test_compaction_policy_validation(self):
        with pytest.raises(ValueError):
            MatrixMatcher(compaction_policy="sometimes")

    def test_timing_attached(self, rng):
        msgs, reqs = permuted_pair(rng, 64)
        out = MatrixMatcher().match(msgs, reqs)
        assert out.seconds > 0
        assert out.matches_per_second() > 0
        assert "scan" in out.meta["phase_cycles"]
        assert "reduce" in out.meta["phase_cycles"]


class TestListMatcher:
    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_equals_oracle(self, wl):
        msgs, reqs = wl
        out = ListMatcher().match(msgs, reqs)
        ref = reference_match(msgs, reqs)
        assert np.array_equal(out.request_to_message, ref.request_to_message)

    def test_search_length_shrinks_as_list_drains(self):
        """Matching from the head must unlink entries: matching the same
        tuple repeatedly always costs one visit."""
        msgs = EnvelopeBatch(src=[1] * 100, tag=[0] * 100)
        reqs = EnvelopeBatch(src=[1] * 100, tag=[0] * 100)
        out = ListMatcher().match(msgs, reqs)
        assert out.meta["mean_search_length"] == pytest.approx(1.0)

    def test_reversed_queue_quadratic_traversal(self):
        """Requests in reverse queue order traverse ~n/2 entries each."""
        n = 64
        msgs = EnvelopeBatch(src=list(range(n)), tag=[0] * n)
        reqs = EnvelopeBatch(src=list(reversed(range(n))), tag=[0] * n)
        out = ListMatcher().match(msgs, reqs)
        assert out.meta["mean_search_length"] == pytest.approx((n + 1) / 2)


class TestHashMatcher:
    @given(workloads(allow_wildcards=False))
    @settings(max_examples=40, deadline=None)
    def test_valid_on_arbitrary_workloads(self, wl):
        """Arbitrary (possibly unmatchable) workloads: every reported pair
        must be envelope-valid; completeness is only guaranteed when every
        message has a partner (see the starvation caveat in the module
        docstring)."""
        msgs, reqs = wl
        out = HashMatcher().match(msgs, reqs)
        check_relaxed(msgs, reqs, out, require_complete=False)

    @given(st.integers(min_value=0, max_value=128), st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_complete_on_matchable_workloads(self, n, seed):
        """Fully-matchable workloads (requests = permutation of messages)
        always match completely: every live table entry has a pending
        partner, so every round makes progress."""
        rng = np.random.default_rng(seed)
        msgs = EnvelopeBatch.random(n, n_ranks=8, n_tags=4, rng=rng)
        reqs = msgs.take(rng.permutation(n))
        out = HashMatcher().match(msgs, reqs)
        check_relaxed(msgs, reqs, out, require_complete=True)
        assert out.matched_count == n

    def test_heavy_duplicates_complete(self):
        msgs = EnvelopeBatch(src=[3] * 200, tag=[7] * 200)
        out = HashMatcher().match(msgs, msgs)
        check_relaxed(msgs, msgs, out, require_complete=True)
        assert out.matched_count == 200
        assert out.iterations >= 50  # two table slots drain 2+2 per round

    def test_unique_tuples_single_round(self, rng):
        n = 256
        msgs = EnvelopeBatch(src=np.arange(n), tag=np.zeros(n, dtype=int))
        reqs = msgs.take(rng.permutation(n))
        out = HashMatcher(config=HashTableConfig(scale=4.0)).match(msgs, reqs)
        assert out.matched_count == n
        assert out.iterations <= 3  # near-collision-free

    def test_wildcards_rejected(self):
        reqs = EnvelopeBatch(src=[ANY_SOURCE], tag=[0])
        msgs = EnvelopeBatch(src=[0], tag=[0])
        with pytest.raises(ValueError):
            HashMatcher().match(msgs, reqs)

    def test_unmatchable_messages_left_unexpected(self):
        msgs = EnvelopeBatch(src=[1, 2], tag=[0, 0])
        reqs = EnvelopeBatch(src=[1], tag=[0])
        out = HashMatcher().match(msgs, reqs)
        assert out.matched_count == 1
        assert list(out.unmatched_message_indices()) == [1]

    def test_identity_hash_still_correct(self, rng):
        """The pathological no-mixing hash must stay functionally correct,
        only slower (more rounds)."""
        msgs, reqs = permuted_pair(rng, 128, n_ranks=32, n_tags=4)
        cfg = HashTableConfig(hash_name="identity", scale=4.0)
        out = HashMatcher(config=cfg).match(msgs, reqs)
        check_relaxed(msgs, reqs, out, require_complete=True)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HashTableConfig(scale=0)
        with pytest.raises(ValueError):
            HashTableConfig(primary_factor=0)
        with pytest.raises(ValueError):
            HashTableConfig(hash_name="md5")
        with pytest.raises(ValueError):
            HashMatcher(n_ctas=0)

    def test_table_sizes_follow_five_to_one(self):
        p, s = HashTableConfig().sizes(1024)
        assert p == 5 * s

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_probe_depth_preserves_correctness(self, depth, seed):
        rng = np.random.default_rng(seed)
        msgs = EnvelopeBatch.random(96, n_ranks=6, n_tags=3, rng=rng)
        reqs = msgs.take(rng.permutation(96))
        cfg = HashTableConfig(probe_depth=depth, scale=1.2)
        out = HashMatcher(config=cfg).match(msgs, reqs)
        check_relaxed(msgs, reqs, out, require_complete=True)

    def test_deeper_probing_reduces_rounds_on_tight_tables(self, rng):
        msgs, reqs = permuted_pair(rng, 512, n_ranks=16, n_tags=8)
        shallow = HashMatcher(config=HashTableConfig(
            probe_depth=1, scale=1.05)).match(msgs, reqs)
        deep = HashMatcher(config=HashTableConfig(
            probe_depth=8, scale=1.05)).match(msgs, reqs)
        assert deep.iterations < shallow.iterations

    def test_probe_depth_validation(self):
        with pytest.raises(ValueError):
            HashTableConfig(probe_depth=0)

    def test_replicas_aggregate_rate(self, rng):
        msgs, reqs = permuted_pair(rng, 256, n_ranks=64, n_tags=16)
        o1 = HashMatcher(n_ctas=1).match(msgs, reqs)
        o32 = HashMatcher(n_ctas=32).match(msgs, reqs)
        assert o32.replicas == 32
        assert o32.matches_per_second() > o1.matches_per_second()


class TestPartitionedMatcher:
    @given(workloads(allow_wildcards=False),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_equals_oracle(self, wl, n_queues):
        msgs, reqs = wl
        out = PartitionedMatcher(n_queues=n_queues).match(msgs, reqs)
        ref = reference_match(msgs, reqs)
        assert np.array_equal(out.request_to_message, ref.request_to_message)

    def test_tag_wildcards_allowed(self, rng):
        msgs, reqs = permuted_pair(rng, 100, n_ranks=8)
        reqs = EnvelopeBatch(reqs.src,
                             np.where(rng.random(100) < 0.3, ANY_TAG,
                                      reqs.tag))
        out = PartitionedMatcher(n_queues=4).match(msgs, reqs)
        check_mpi_ordering(msgs, reqs, out)

    def test_src_wildcards_rejected(self):
        msgs = EnvelopeBatch(src=[0], tag=[0])
        reqs = EnvelopeBatch(src=[ANY_SOURCE], tag=[0])
        with pytest.raises(ValueError):
            PartitionedMatcher().match(msgs, reqs)

    def test_queue_assignment_static(self):
        p = PartitionedMatcher(n_queues=4)
        src = np.array([0, 1, 4, 5, 9])
        assert np.array_equal(p.queue_of(src), [0, 1, 0, 1, 1])

    def test_more_queues_faster(self, rng):
        msgs, reqs = permuted_pair(rng, 1024, n_ranks=64, n_tags=4)
        r1 = PartitionedMatcher(n_queues=1).match(msgs, reqs)
        r8 = PartitionedMatcher(n_queues=8).match(msgs, reqs)
        assert r8.matches_per_second() > 2 * r1.matches_per_second()

    def test_cta_annotation(self, rng):
        msgs, reqs = permuted_pair(rng, 4096, n_ranks=64, n_tags=4)
        out = PartitionedMatcher(n_queues=8).match(msgs, reqs)
        # one thread per message at warp granularity: ceil(4096/1024) = 4
        # CTAs plus at most one more from per-queue warp rounding
        assert out.meta["ctas"] in (4, 5)
        assert out.meta["waves"] >= 2  # beyond the two resident CTAs

    def test_narrow_warps_cut_provisioning_waste(self, rng):
        """Variable warp sizes (Section VII-C): many tiny queues waste
        most of their 32-lane warps; 8-lane warps pack them into fewer
        CTAs and avoid wave serialization."""
        msgs, reqs = permuted_pair(rng, 1024, n_ranks=256, n_tags=4)
        wide = PartitionedMatcher(n_queues=128, warp_size=32).match(
            msgs, reqs)
        narrow = PartitionedMatcher(n_queues=128, warp_size=8).match(
            msgs, reqs)
        assert np.array_equal(wide.request_to_message,
                              narrow.request_to_message)
        assert narrow.meta["ctas"] < wide.meta["ctas"]
        assert narrow.matches_per_second() > wide.matches_per_second()

    @given(workloads(allow_wildcards=False),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_tag_partitioning_equals_oracle(self, wl, n_queues):
        """Tag-partitioned matching preserves MPI semantics too: same-tag
        same-source messages always share a queue."""
        msgs, reqs = wl
        out = PartitionedMatcher(n_queues=n_queues,
                                 partition_key="tag").match(msgs, reqs)
        ref = reference_match(msgs, reqs)
        assert np.array_equal(out.request_to_message, ref.request_to_message)

    def test_tag_partitioning_allows_src_wildcards(self, rng):
        msgs, reqs = permuted_pair(rng, 120, n_ranks=8, n_tags=16)
        reqs = EnvelopeBatch(
            np.where(rng.random(120) < 0.3, ANY_SOURCE, reqs.src), reqs.tag)
        out = PartitionedMatcher(n_queues=4,
                                 partition_key="tag").match(msgs, reqs)
        check_mpi_ordering(msgs, reqs, out)

    def test_tag_partitioning_rejects_tag_wildcards(self):
        msgs = EnvelopeBatch(src=[0], tag=[0])
        reqs = EnvelopeBatch(src=[0], tag=[ANY_TAG])
        with pytest.raises(ValueError):
            PartitionedMatcher(partition_key="tag").match(msgs, reqs)

    def test_invalid_partition_key(self):
        with pytest.raises(ValueError):
            PartitionedMatcher(partition_key="comm")

    def test_multi_sm_reduces_waves(self, rng):
        msgs, reqs = permuted_pair(rng, 8192, n_ranks=64, n_tags=8)
        one = PartitionedMatcher(n_queues=16, sm_count=1).match(msgs, reqs)
        four = PartitionedMatcher(n_queues=16, sm_count=4).match(msgs, reqs)
        assert np.array_equal(one.request_to_message,
                              four.request_to_message)
        assert four.meta["waves"] < one.meta["waves"]
        assert four.matches_per_second() > one.matches_per_second()

    def test_sm_count_validation(self):
        with pytest.raises(ValueError):
            PartitionedMatcher(sm_count=0)
        with pytest.raises(ValueError):
            PartitionedMatcher(sm_count=999)

    def test_single_rank_imbalance(self):
        """All traffic on one rank collapses to single-queue performance."""
        msgs = EnvelopeBatch(src=[5] * 256, tag=list(range(256)))
        reqs = EnvelopeBatch(src=[5] * 256, tag=list(reversed(range(256))))
        balanced = PartitionedMatcher(n_queues=8)
        out = balanced.match(msgs, reqs)
        assert out.meta["n_active_queues"] == 1
        check_mpi_ordering(msgs, reqs, out)
