"""Compute-sanitizer-style dynamic analysis for the SIMT simulator.

The matching kernels of the paper live or die on subtle SIMT semantics:
the shared-memory vote matrix, warp ballots, CAS-based queue claims, and
CTA barriers of Section V.  The simulator executes those primitives
faithfully, but -- like real hardware -- it happily executes *incorrect*
uses of them too (races, missing barriers, uninitialized loads).  This
module is the opt-in analysis layer that catches such misuse, modeled on
NVIDIA's ``compute-sanitizer`` tools:

**racecheck**
    :class:`~repro.simt.memory.SharedMemory` accesses carry the issuing
    warp id; the sanitizer keeps per-word shadow history (last writer /
    reader warp and barrier epoch, where epochs are advanced by
    :meth:`~repro.simt.cta.CTA.syncthreads`) and flags write-write,
    write-read, and read-write pairs from *different* warps within one
    epoch -- i.e. shared-memory communication not ordered by a barrier.

**synccheck**
    Flags ``syncthreads()`` issued while any warp of the CTA is
    divergent (mixed active mask) or still holds an unreconverged
    :meth:`~repro.simt.warp.Warp.push_mask`, and barrier-count
    mismatches in :class:`~repro.simt.sm.SMScheduler` streams (a warp
    that finishes while its siblings wait at a barrier).

**initcheck**
    Valid-bit shadow state on :class:`~repro.simt.memory.GlobalMemory`
    and :class:`~repro.simt.memory.SharedMemory`: loads (and atomics) on
    words never stored or :meth:`~repro.simt.memory.GlobalMemory.memset`
    are findings.  Global accesses are additionally *region aware*: one
    warp access straddling two named allocations, or touching words
    outside every allocation, is flagged even when globally in bounds.

**ledger** (audit)
    Cross-checks that every load/store/atomic executed on a simulated
    memory charged its :class:`~repro.simt.timing.CostLedger` exactly
    once: an instrumented memory with a detached ledger (uncharged
    traffic) or a kernel double-charging an access kind is reported at
    :meth:`Sanitizer.finalize`.

The pass is threaded through the SIMT layer exactly like the ``obs=``
observability handle: every hot path takes a single ``is None`` branch,
and with ``sanitize=None`` (the default everywhere) outcomes, modeled
cycles, and cost ledgers are bit-identical -- enforced by
``tests/core/test_fastpath_equivalence.py``.  Deliberately-buggy kernels
proving each checker fires live in :mod:`repro.simt.sanitize_fixtures`.
"""

from __future__ import annotations

import numpy as np

from .sanitize_report import (SEVERITY_ERROR, Finding, SanitizerError,
                              SanitizerReport)

__all__ = ["Sanitizer", "CHECKERS", "SanitizerReport", "SanitizerError",
           "Finding"]

#: The four analysis passes, in report order.
CHECKERS = ("racecheck", "synccheck", "initcheck", "ledger")

#: Offending addresses reported per access before the rest of the access
#: is folded into the suppressed counter.
_MAX_ADDRS_PER_ACCESS = 8


class _SharedShadow:
    """Per-word shadow state of one :class:`SharedMemory`."""

    __slots__ = ("epoch", "write_warp", "write_epoch", "read_warp",
                 "read_epoch", "valid")

    def __init__(self, size: int) -> None:
        self.epoch = 0
        self.write_warp = np.full(size, -1, dtype=np.int64)
        self.write_epoch = np.full(size, -1, dtype=np.int64)
        self.read_warp = np.full(size, -1, dtype=np.int64)
        self.read_epoch = np.full(size, -1, dtype=np.int64)
        self.valid = np.zeros(size, dtype=bool)


class _GlobalShadow:
    """Valid bits + region table of one :class:`GlobalMemory`."""

    __slots__ = ("valid", "bases", "lengths", "names")

    def __init__(self, size: int) -> None:
        self.valid = np.zeros(size, dtype=bool)
        self.bases: list[int] = []
        self.lengths: list[int] = []
        self.names: list[str] = []

    def region_of(self, addrs: np.ndarray) -> np.ndarray:
        """Region index per address (-1 = outside every allocation)."""
        bases = np.asarray(self.bases, dtype=np.int64)
        idx = np.searchsorted(bases, addrs, side="right") - 1
        ends = bases + np.asarray(self.lengths, dtype=np.int64)
        inside = (idx >= 0) & (addrs < ends[np.clip(idx, 0, len(ends) - 1)])
        return np.where(inside, idx, -1)


class Sanitizer:
    """Opt-in dynamic-analysis handle for the SIMT layer.

    Parameters
    ----------
    checkers:
        Iterable subset of :data:`CHECKERS` to enable (default: all).
    obs:
        Optional :class:`~repro.obs.Observability` handle; each recorded
        finding also emits a ``sanitizer.finding`` trace instant and
        bumps the ``sanitizer.findings`` counter.
    max_findings_per_checker:
        Cap on recorded findings per checker (the rest is counted as
        suppressed).

    The handle is stateful: attach a fresh one per run you want to gate
    on, or share one across runs to accumulate a combined report.  All
    hooks are no-ops for checkers that are disabled, and the instrumented
    layers only call them behind an ``is None`` guard, so a run without a
    sanitizer is bit-identical to one never compiled against it.
    """

    def __init__(self, checkers=None, obs=None,
                 max_findings_per_checker: int = 100) -> None:
        enabled = tuple(checkers) if checkers is not None else CHECKERS
        unknown = set(enabled) - set(CHECKERS)
        if unknown:
            raise ValueError(f"unknown checkers: {sorted(unknown)}")
        self._enabled = frozenset(enabled)
        self._obs = obs
        self.report = SanitizerReport(
            max_per_checker=max_findings_per_checker)
        #: Label attached to findings; set by launchers/matchers.
        self.current_kernel: str | None = None
        # ledger audit: (memory id, kind) -> [accesses, charge calls]
        self._audit: dict[tuple[int, str], list[int]] = {}
        self._audit_names: dict[int, str] = {}
        self._audit_keepalive: list[object] = []

    def enabled(self, checker: str) -> bool:
        """Whether one of the four passes is active."""
        return checker in self._enabled

    # -- finding emission ---------------------------------------------------

    def _emit(self, checker: str, code: str, message: str, *,
              severity: str = SEVERITY_ERROR, address: int | None = None,
              region: str | None = None, epoch: int | None = None,
              warp_id: int | None = None) -> None:
        recorded = self.report.add(Finding(
            checker=checker, code=code, severity=severity, message=message,
            kernel=self.current_kernel, address=address, region=region,
            epoch=epoch, warp_id=warp_id))
        if self._obs is not None:
            self._obs.count("sanitizer.findings")
            if recorded:
                self._obs.instant("sanitizer.finding", checker=checker,
                                  code=code, message=message,
                                  kernel=self.current_kernel)

    def _emit_addrs(self, checker: str, code: str, fmt: str,
                    addrs: np.ndarray, **fields) -> None:
        """One finding per unique offending word address (capped)."""
        unique = np.unique(np.asarray(addrs, dtype=np.int64))
        for a in unique[:_MAX_ADDRS_PER_ACCESS]:
            self._emit(checker, code, fmt.format(addr=int(a)),
                       address=int(a), **fields)
        for a in unique[_MAX_ADDRS_PER_ACCESS:]:
            self.report.suppressed[checker] += 1

    # -- shared memory: racecheck + initcheck -------------------------------

    def register_shared(self, mem) -> None:
        """Attach shadow state to a :class:`SharedMemory`."""
        mem._san_shadow = _SharedShadow(mem.data.size)

    def shared_access(self, mem, kind: str, addresses: np.ndarray,
                      warp_id: int | None) -> None:
        """Record one warp access to shared memory (``kind``: load/store)."""
        shadow: _SharedShadow = mem._san_shadow
        addrs = np.asarray(addresses, dtype=np.int64)
        is_store = kind == "store"
        if self.enabled("initcheck") and not is_store:
            bad = addrs[~shadow.valid[addrs]]
            if bad.size:
                self._emit_addrs(
                    "initcheck", "uninit-smem-load",
                    "load of never-stored shared word {addr}",
                    bad, warp_id=warp_id, epoch=shadow.epoch)
        if self.enabled("racecheck") and warp_id is not None:
            epoch = shadow.epoch
            same_epoch_write = ((shadow.write_epoch[addrs] == epoch)
                                & (shadow.write_warp[addrs] != warp_id))
            if is_store:
                ww = addrs[same_epoch_write]
                if ww.size:
                    self._emit_addrs(
                        "racecheck", "write-write",
                        "write-write race on shared word {addr}: two warps "
                        "stored it within one barrier epoch",
                        ww, warp_id=warp_id, epoch=epoch)
                rw = addrs[(shadow.read_epoch[addrs] == epoch)
                           & (shadow.read_warp[addrs] != warp_id)
                           & (shadow.read_warp[addrs] >= 0)]
                if rw.size:
                    self._emit_addrs(
                        "racecheck", "read-write",
                        "read-write race on shared word {addr}: stored by "
                        "one warp after another warp read it, no barrier "
                        "between",
                        rw, warp_id=warp_id, epoch=epoch)
            else:
                wr = addrs[same_epoch_write
                           & (shadow.write_warp[addrs] >= 0)]
                if wr.size:
                    self._emit_addrs(
                        "racecheck", "write-read",
                        "write-read race on shared word {addr}: loaded "
                        "without a barrier after another warp stored it",
                        wr, warp_id=warp_id, epoch=shadow.epoch)
        # shadow updates (after checks so a racy pair is seen once)
        if is_store:
            shadow.valid[addrs] = True
            if warp_id is not None:
                shadow.write_warp[addrs] = warp_id
                shadow.write_epoch[addrs] = shadow.epoch
        elif warp_id is not None:
            shadow.read_warp[addrs] = warp_id
            shadow.read_epoch[addrs] = shadow.epoch

    # -- barriers: synccheck + epoch advance --------------------------------

    def barrier(self, cta) -> None:
        """One ``syncthreads()``: advance the racecheck epoch and check
        every warp arrived reconverged."""
        if cta.shared is not None and hasattr(cta.shared, "_san_shadow"):
            cta.shared._san_shadow.epoch += 1
        if not self.enabled("synccheck"):
            return
        for warp in cta.warps:
            n_active = int(warp.active.sum())
            if 0 < n_active < warp.warp_size:
                self._emit(
                    "synccheck", "divergent-barrier",
                    f"syncthreads() with warp {warp.warp_id} divergent "
                    f"({n_active}/{warp.warp_size} lanes active)",
                    warp_id=warp.warp_id,
                    epoch=cta.barrier_count)
            if warp.mask_depth > 0:
                self._emit(
                    "synccheck", "unpopped-mask",
                    f"syncthreads() while warp {warp.warp_id} holds "
                    f"{warp.mask_depth} unreconverged push_mask level(s)",
                    warp_id=warp.warp_id,
                    epoch=cta.barrier_count)

    def scheduler_barrier_mismatch(self, done_warps, barrier_index: int,
                                   ) -> None:
        """A stream finished while its siblings wait at a barrier."""
        if not self.enabled("synccheck"):
            return
        for w in done_warps:
            self._emit(
                "synccheck", "barrier-count-mismatch",
                f"warp {w} finished its stream while other warps wait at "
                f"barrier #{barrier_index}: mismatched barrier counts",
                warp_id=int(w), epoch=barrier_index)

    # -- global memory: initcheck (valid bits + region bounds) --------------

    def register_global(self, mem) -> None:
        """Attach shadow state to a :class:`GlobalMemory`."""
        mem._san_shadow = _GlobalShadow(mem.data.size)

    def global_alloc(self, mem, name: str, base: int, words: int) -> None:
        """Record a named region (the allocator is a bump pointer, so
        bases arrive sorted)."""
        shadow: _GlobalShadow = mem._san_shadow
        shadow.bases.append(base)
        shadow.lengths.append(words)
        shadow.names.append(name)

    def global_memset(self, mem, base: int, words: int) -> None:
        """A host-side ``cudaMemset``-style fill defines its words."""
        mem._san_shadow.valid[base:base + words] = True

    def global_access(self, mem, kind: str, addresses: np.ndarray,
                      written: np.ndarray | None = None) -> None:
        """Record one warp access to global memory.

        ``kind`` is ``"load"``, ``"store"`` or ``"atomic"``; ``written``
        carries the subset of addresses an atomic actually modified.
        """
        shadow: _GlobalShadow = mem._san_shadow
        addrs = np.asarray(addresses, dtype=np.int64)
        if self.enabled("initcheck") and addrs.size:
            if shadow.bases:
                regions = shadow.region_of(addrs)
                outside = addrs[regions == -1]
                if outside.size:
                    self._emit_addrs(
                        "initcheck", "unallocated",
                        "access to global word {addr} outside every "
                        "allocated region", outside)
                touched = np.unique(regions[regions >= 0])
                if touched.size > 1:
                    names = ", ".join(repr(shadow.names[i]) for i in touched)
                    self._emit(
                        "initcheck", "region-straddle",
                        f"one warp {kind} straddles {touched.size} regions "
                        f"({names})",
                        region=shadow.names[int(touched[0])],
                        address=int(addrs.min()))
            if kind != "store":
                bad = addrs[~shadow.valid[addrs]]
                if bad.size:
                    self._emit_addrs(
                        "initcheck", "uninit-gmem-load",
                        kind + " of never-stored global word {addr}",
                        bad)
        if kind == "store":
            shadow.valid[addrs] = True
        elif written is not None and written.size:
            shadow.valid[np.asarray(written, dtype=np.int64)] = True

    # -- ledger audit -------------------------------------------------------

    def note_access(self, mem, kind: str) -> None:
        """One memory access happened (whether or not it was charged)."""
        key = (id(mem), kind)
        entry = self._audit.get(key)
        if entry is None:
            self._audit[key] = [1, 0]
            if id(mem) not in self._audit_names:
                self._audit_names[id(mem)] = type(mem).__name__
                self._audit_keepalive.append(mem)
        else:
            entry[0] += 1

    def note_charge(self, mem, kind: str) -> None:
        """One ledger charge was issued for a memory access."""
        key = (id(mem), kind)
        entry = self._audit.get(key)
        if entry is None:
            self._audit[key] = [0, 1]
            if id(mem) not in self._audit_names:
                self._audit_names[id(mem)] = type(mem).__name__
                self._audit_keepalive.append(mem)
        else:
            entry[1] += 1

    def finalize(self) -> SanitizerReport:
        """Run the ledger audit over the accesses seen so far and return
        the report.

        Idempotent across runs: the audit counters are consumed, so a
        sanitizer shared by several launches reports each launch's
        mismatches once.
        """
        if self.enabled("ledger"):
            for (mem_id, kind), (accesses, charges) in sorted(
                    self._audit.items(), key=lambda kv: kv[0][1]):
                name = self._audit_names.get(mem_id, "memory")
                # region carries the audited stream so findings for
                # different kinds/memories keep distinct dedup keys
                where = f"{name}.{kind}"
                if charges < accesses:
                    self._emit(
                        "ledger", "uncharged-access",
                        f"{accesses - charges} of {accesses} {kind} "
                        f"accesses on {name} never charged the cost "
                        f"ledger", region=where)
                elif charges > accesses:
                    self._emit(
                        "ledger", "double-charge",
                        f"{kind} on {name} charged {charges} times for "
                        f"{accesses} accesses", region=where)
        self._audit.clear()
        self._audit_names.clear()
        self._audit_keepalive.clear()
        return self.report
