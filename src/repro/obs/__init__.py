"""Cross-layer observability: structured tracing + metrics.

The paper's own analysis (Section IV) is an observability exercise --
understanding matching behaviour from queue depths, peer/tag
distributions, and wildcard usage.  This package gives the simulator the
same first-class instrumentation, Caliper-style (PAPERS.md: Nansamba et
al.): a :class:`~repro.obs.tracer.Tracer` of span/instant events on the
simulated clock (exportable to Chrome/Perfetto ``trace.json`` and JSONL)
and a :class:`~repro.obs.metrics.MetricsRegistry` of named counters,
gauges, and histograms.

:class:`Observability` bundles the two behind one handle that every
instrumented layer (``simt``, ``core``, ``mpi``, ``bench``) accepts as an
optional ``obs`` parameter.  The contract:

* **Zero overhead when off.**  With no handle attached (``obs=None``,
  the default everywhere) the hot paths take a single
  ``if self._obs is None`` branch and nothing else changes: match
  results, cost ledgers, and modeled cycles are bit-identical
  (``tests/core/test_fastpath_equivalence.py`` proves it).
* **No model feedback.**  Instrumentation only *reads* the simulation;
  it never writes ledgers or advances modeled time, so traces and
  metrics can be attached to any run without perturbing its figures.

Either half may be attached alone: ``Observability(metrics=...)`` counts
without buffering a timeline; ``Observability(tracer=...)`` traces
without counters.  Helpers no-op on whichever half is missing.
"""

from __future__ import annotations

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, percentile
from .tracer import Tracer

__all__ = ["Observability", "Tracer", "MetricsRegistry", "Counter", "Gauge",
           "Histogram", "percentile"]


class Observability:
    """One handle bundling a tracer and a metrics registry.

    Parameters
    ----------
    tracer:
        Optional :class:`Tracer`; ``None`` disables the timeline half.
    metrics:
        Optional :class:`MetricsRegistry`; ``None`` disables counters.
    """

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.tracer = tracer
        self.metrics = metrics

    @classmethod
    def enabled(cls, max_events: int = 1_000_000) -> "Observability":
        """A fully-enabled handle (fresh tracer + registry)."""
        return cls(tracer=Tracer(max_events=max_events),
                   metrics=MetricsRegistry())

    # -- metrics shorthands -------------------------------------------------------

    def count(self, name: str, n: float = 1.0) -> None:
        """Add ``n`` to a counter (no-op without a registry)."""
        if self.metrics is not None:
            self.metrics.inc(name, n)

    def gauge(self, name: str, value: float) -> None:
        """Write a gauge (no-op without a registry)."""
        if self.metrics is not None:
            self.metrics.set(name, value)

    def observe(self, name: str, value: float, count: int = 1) -> None:
        """Record histogram observations (no-op without a registry)."""
        if self.metrics is not None:
            self.metrics.observe(name, value, count)

    def snapshot(self) -> dict | None:
        """Metrics snapshot, or ``None`` without a registry."""
        return self.metrics.snapshot() if self.metrics is not None else None

    # -- tracing shorthands -------------------------------------------------------

    def span(self, name: str, dur_seconds: float, **args) -> None:
        """Emit a span at the current simulated time and advance the
        clock past it (sequential layout)."""
        t = self.tracer
        if t is not None:
            t.complete(name, t.now, dur_seconds, **args)
            t.advance(dur_seconds)

    def match_span(self, name: str, seconds: float,
                   phase_cycles: dict | None = None,
                   clock_hz: float | None = None, **args) -> None:
        """One matcher pass: the top-level span plus per-phase sub-spans.

        Phase sub-spans are laid out sequentially inside the pass window
        on thread lane 1 (the timing model overlaps phases analytically,
        so true nesting has no honest layout); their cycle counts also
        ride in the span args.
        """
        t = self.tracer
        if t is None:
            return
        start = t.now
        if phase_cycles and clock_hz:
            at = start
            for phase_name, cycles in phase_cycles.items():
                dur = cycles / clock_hz
                t.complete(f"{name}.{phase_name}", at, dur, tid=1,
                           cycles=cycles)
                at += dur
            args.setdefault("phase_cycles", dict(phase_cycles))
        t.complete(name, start, seconds, **args)
        t.advance(seconds)

    def instant(self, name: str, **args) -> None:
        """Emit an instant event at the current simulated time."""
        if self.tracer is not None:
            self.tracer.instant(name, **args)

    def advance(self, seconds: float) -> None:
        """Advance the simulated trace clock without emitting."""
        if self.tracer is not None:
            self.tracer.advance(seconds)

    def set_rank(self, rank: int) -> None:
        """Attribute subsequent events to a rank's process lane."""
        t = self.tracer
        if t is not None:
            t.current_pid = rank
            if rank not in t._process_names:
                t.set_process_name(rank, f"rank {rank}")
                t.set_thread_name(rank, 0, "comm kernel")
                t.set_thread_name(rank, 1, "phases")
