"""Process topologies for neighborhood collectives.

MPI's virtual topologies let an application declare *who talks to whom*
so the library can exploit the sparsity: a neighborhood collective only
moves data along declared edges instead of all-to-all.  Two topology
objects cover the MPI-3 surface:

* :class:`CartGraph` -- ``MPI_Cart_create``: a regular d-dimensional
  grid, neighbors are the ±1 face stencil per dimension (periodic or
  truncated at the boundary).
* :class:`DistGraph` -- ``MPI_Dist_graph_create_adjacent``: arbitrary
  per-rank adjacency, the shape of unstructured-mesh halo exchange
  (Laghos-style).

Both expose the same read API -- ``n_ranks``, ``sources(rank)``,
``destinations(rank)`` -- in a deterministic order, which is what the
collectives in :mod:`repro.mpi.collectives` iterate.  The neighbor lists
follow MPI's ordering rules: Cartesian neighbors are ordered by
dimension, negative direction first; distributed-graph neighbors keep
the order the application declared.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["CartGraph", "DistGraph"]


class CartGraph:
    """Regular Cartesian grid topology (``MPI_Cart_create``).

    Parameters
    ----------
    dims:
        Grid extent per dimension; ``n_ranks`` is their product.
    periodic:
        Per-dimension wraparound flags, or one bool for all dimensions.
        Non-periodic boundaries simply have fewer neighbors (MPI's
        ``MPI_PROC_NULL`` edges are elided rather than modelled).
    """

    def __init__(self, dims: Sequence[int],
                 periodic: bool | Sequence[bool] = False) -> None:
        if not dims:
            raise ValueError("dims cannot be empty")
        if any(d < 1 for d in dims):
            raise ValueError(f"every dimension must be >= 1, got {dims}")
        self.dims = tuple(int(d) for d in dims)
        if isinstance(periodic, bool):
            periodic = [periodic] * len(self.dims)
        if len(periodic) != len(self.dims):
            raise ValueError("periodic flags must match dims")
        self.periodic = tuple(bool(p) for p in periodic)
        self.n_ranks = 1
        for d in self.dims:
            self.n_ranks *= d

    def coords(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates of ``rank`` (row-major, like MPI)."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        out = []
        for d in reversed(self.dims):
            out.append(rank % d)
            rank //= d
        return tuple(reversed(out))

    def rank_of(self, coords: Sequence[int]) -> int:
        """Rank at ``coords`` (row-major)."""
        if len(coords) != len(self.dims):
            raise ValueError("coordinate arity must match dims")
        rank = 0
        for c, d in zip(coords, self.dims):
            if not 0 <= c < d:
                raise ValueError(f"coordinate {c} out of range 0..{d - 1}")
            rank = rank * d + c
        return rank

    def destinations(self, rank: int) -> list[int]:
        """Face neighbors in MPI order: per dimension, -1 then +1.

        The Cartesian graph is symmetric, so sources == destinations.
        """
        coords = self.coords(rank)
        out: list[int] = []
        for dim, (c, extent, wrap) in enumerate(
                zip(coords, self.dims, self.periodic)):
            for step in (-1, +1):
                n = c + step
                if wrap:
                    n %= extent
                elif not 0 <= n < extent:
                    continue
                ncoords = list(coords)
                ncoords[dim] = n
                neighbor = self.rank_of(ncoords)
                if neighbor != rank and neighbor not in out:
                    out.append(neighbor)
        return out

    sources = destinations

    def edges(self) -> list[tuple[int, int]]:
        """Every directed ``(src, dst)`` edge, source-major."""
        return [(r, d) for r in range(self.n_ranks)
                for d in self.destinations(r)]

    def __repr__(self) -> str:
        return (f"CartGraph(dims={self.dims}, periodic={self.periodic}, "
                f"n_ranks={self.n_ranks})")


class DistGraph:
    """Arbitrary adjacency topology
    (``MPI_Dist_graph_create_adjacent``).

    Parameters
    ----------
    destinations:
        ``rank -> iterable of destination ranks`` (the ranks this rank
        sends to), either a mapping or a dense per-rank sequence.
    n_ranks:
        Total rank count; inferred from the adjacency if omitted.

    Sources are derived by transposing the destination lists, ordered by
    sending rank -- deterministic without requiring the caller to
    declare both directions consistently.
    """

    def __init__(self, destinations, n_ranks: int | None = None) -> None:
        if hasattr(destinations, "items"):
            items = destinations.items()
        else:
            items = enumerate(destinations)
        dests: dict[int, list[int]] = {}
        top = -1
        for rank, targets in items:
            rank = int(rank)
            dests[rank] = out = []
            for t in targets:
                t = int(t)
                if t != rank and t not in out:
                    out.append(t)
            top = max(top, rank, *out) if out else max(top, rank)
        self.n_ranks = (top + 1) if n_ranks is None else int(n_ranks)
        if self.n_ranks < 1:
            raise ValueError("topology needs at least one rank")
        for rank, out in dests.items():
            bad = [t for t in [rank] + out if not 0 <= t < self.n_ranks]
            if bad:
                raise ValueError(f"rank(s) {bad} out of range "
                                 f"0..{self.n_ranks - 1}")
        self._dests = {r: tuple(dests.get(r, ())) for r in
                       range(self.n_ranks)}
        srcs: dict[int, list[int]] = {r: [] for r in range(self.n_ranks)}
        for rank in range(self.n_ranks):
            for t in self._dests[rank]:
                srcs[t].append(rank)
        self._srcs = {r: tuple(v) for r, v in srcs.items()}

    def destinations(self, rank: int) -> list[int]:
        """Ranks this rank sends to, in declaration order."""
        return list(self._dests[rank])

    def sources(self, rank: int) -> list[int]:
        """Ranks this rank receives from, ordered by sending rank."""
        return list(self._srcs[rank])

    def edges(self) -> list[tuple[int, int]]:
        """Every directed ``(src, dst)`` edge, source-major."""
        return [(r, d) for r in range(self.n_ranks)
                for d in self._dests[r]]

    def __repr__(self) -> str:
        n_edges = sum(len(v) for v in self._dests.values())
        return f"DistGraph(n_ranks={self.n_ranks}, n_edges={n_edges})"
