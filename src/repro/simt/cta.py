"""Cooperative Thread Arrays (CTAs).

A CTA groups up to 32 warps that share a scratchpad (:class:`SharedMemory`)
and can barrier-synchronize.  The matrix matcher maps one warp per 32
messages and is therefore limited to 1024 messages per CTA -- exactly the
constraint the paper derives: *"as so far all NVIDIA GPUs only support 32
warps per CTA, the matrix height is limited to 32"* (Section V-A).
"""

from __future__ import annotations

import numpy as np

from .memory import SharedMemory
from .timing import CostLedger
from .warp import WARP_SIZE, Warp

__all__ = ["CTA", "MAX_WARPS_PER_CTA"]

#: Hardware limit on warps per CTA (1024 threads / 32 lanes).
MAX_WARPS_PER_CTA = 32


class CTA:
    """A simulated cooperative thread array.

    Parameters
    ----------
    num_warps:
        Warps in this CTA (1..32).
    shared_words:
        Words of shared memory to allocate for the CTA's scratchpad.
    ledger:
        Cost ledger shared by the CTA's warps and shared memory; one is
        created if omitted.
    cta_id:
        Index within the grid.
    sanitize:
        Optional :class:`~repro.simt.sanitize.Sanitizer`; threaded into the
        CTA's shared memory and notified at every :meth:`syncthreads` so
        racecheck epochs advance and synccheck can inspect warp masks.
    """

    def __init__(self, num_warps: int, shared_words: int = 0,
                 ledger: CostLedger | None = None, cta_id: int = 0,
                 sanitize: "object | None" = None) -> None:
        if not 1 <= num_warps <= MAX_WARPS_PER_CTA:
            raise ValueError(
                f"num_warps must be in [1, {MAX_WARPS_PER_CTA}], got {num_warps}")
        self.cta_id = cta_id
        self.ledger = ledger if ledger is not None else CostLedger()
        self._san = sanitize
        self.warps = [Warp(warp_id=w, ledger=self.ledger)
                      for w in range(num_warps)]
        self.shared = (SharedMemory(shared_words, ledger=self.ledger,
                                    sanitize=sanitize)
                       if shared_words > 0 else None)
        self._barrier_count = 0

    @property
    def num_warps(self) -> int:
        """Number of warps in the CTA."""
        return len(self.warps)

    @property
    def num_threads(self) -> int:
        """Total threads (warps x 32)."""
        return self.num_warps * WARP_SIZE

    def thread_ids(self) -> np.ndarray:
        """Global thread indices within the CTA, warp-major."""
        return np.arange(self.num_threads, dtype=np.int64)

    def syncthreads(self) -> None:
        """CTA-wide barrier (``__syncthreads``); charged once per warp."""
        self._barrier_count += 1
        self.ledger.issue("sync", float(self.num_warps))
        if self._san is not None:
            self._san.barrier(self)

    @property
    def barrier_count(self) -> int:
        """Barriers executed so far (useful in tests)."""
        return self._barrier_count
