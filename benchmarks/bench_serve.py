"""Serve-layer load harness: sustained matches/s under open-loop load.

Not a paper figure.  Drives :class:`repro.serve.MatchingService` through
open-loop workloads derived from the proxy-application traces
(``repro.traces.apps``) and appends a labeled entry to ``BENCH_serve.json``
at the repository root: sustained host-side matches/s plus p50/p99
request latency (virtual seconds, deterministic per seed) per workload.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]
        [--label LABEL] [--no-json] [--seed SEED] [--rate RPS]
        [--steps N] [--ranks N]

``--smoke`` runs a tiny sweep, writes the report to a temporary file,
schema-checks it, and leaves ``BENCH_serve.json`` untouched (the CI
serve job runs this mode).
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

from repro.bench import Table, format_rate, write_result
from repro.bench.regression import (ServePerfRecord, append_entry,
                                    serve_report_path, validate_serve_entry)
from repro.serve import (DEFAULT_BENCH_APPS, ServeWorkload, run_workload,
                         workload_from_app)


def bench_workloads(*, seed: int = 0, rate_rps: float = 4000.0,
                    steps: int = 4, n_ranks: int = 16,
                    ) -> list[ServeWorkload]:
    """One single-tenant workload per default bench app (>= 3)."""
    return [
        workload_from_app(app, rate_rps=rate_rps, n_ranks=n_ranks,
                          steps=steps, seed=seed,
                          ordering_required=ordering_required)
        for app, ordering_required in DEFAULT_BENCH_APPS
    ]


def run_one(workload: ServeWorkload, *, seed: int = 0,
            n_shards: int = 2, promote_after: int = 2) -> ServePerfRecord:
    """Serve one workload and fold the run into a perf record."""
    service, wall = run_workload(workload, n_shards=n_shards, seed=seed,
                                 promote_after=promote_after)
    report = service.report()
    return ServePerfRecord(
        workload=workload.name,
        tenants=len(workload.tenants),
        n_envelopes=workload.n_envelopes,
        submitted=report["submitted"],
        accepted=report["accepted"],
        shed_retryable=report["shed_retryable"],
        shed_overloaded=report["shed_overloaded"],
        flushes=report["flushes"],
        matched=report["matched"],
        retunes=report["retunes"],
        seconds=wall,
        matches_per_second=report["matched"] / wall if wall > 0 else 0.0,
        latency_p50_vt=report["latency_p50_vt"],
        latency_p99_vt=report["latency_p99_vt"],
        seed=seed,
    )


def serve_table(records: list[ServePerfRecord],
                title: str = "Serve-layer sustained throughput") -> Table:
    table = Table(title=title, columns=["workload", "matched", "shed",
                                        "retunes", "rate", "p99 latency"])
    for r in records:
        shed = r.shed_retryable + r.shed_overloaded
        p99 = (f"{r.latency_p99_vt * 1e6:.1f}us"
               if r.latency_p99_vt is not None else "-")
        table.add(r.workload, r.matched, shed, r.retunes,
                  format_rate(r.matches_per_second), p99)
    table.note("sustained host matches/s over the whole serve run "
               "(open-loop offered load); latency percentiles are in "
               "virtual time, deterministic per seed")
    return table


def smoke_check(seed: int = 0) -> list[ServePerfRecord]:
    """Tiny sweep into a temp report + schema validation (CI mode)."""
    records = [run_one(w, seed=seed)
               for w in bench_workloads(seed=seed, steps=2, n_ranks=8)]
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "BENCH_serve.json"
        append_entry(records, label="smoke", path=path)
        with open(path) as f:
            report = json.load(f)
        problems = validate_serve_entry(report["entries"][-1])
        if problems:
            raise SystemExit("serve report schema check failed:\n  "
                             + "\n  ".join(problems))
    return records


def test_report_serve_perf():
    """Smoke entry for ``pytest benchmarks/``: tiny sweep, temp report
    only, so the committed BENCH_serve.json stays put."""
    records = smoke_check()
    write_result("serve_perf", serve_table(
        records, title="Serve-layer sustained throughput (smoke)").show())
    assert len(records) >= 3
    assert all(r.matched > 0 for r in records)
    assert all(r.matches_per_second > 0 for r in records)


def main(argv: list[str] | None = None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny sweep + schema check; no report-file write")
    ap.add_argument("--label", default="dev",
                    help="entry label in BENCH_serve.json")
    ap.add_argument("--no-json", action="store_true",
                    help="print the table without touching the report file")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--rate", type=float, default=4000.0,
                    help="offered load in requests per virtual second")
    ap.add_argument("--steps", type=int, default=4,
                    help="trace timesteps per workload")
    ap.add_argument("--ranks", type=int, default=16,
                    help="ranks per generated trace")
    args = ap.parse_args(argv)

    if args.smoke:
        records = smoke_check(seed=args.seed)
        serve_table(records, title="Serve smoke (schema checked)").show()
        print("serve report schema: ok")
        return

    workloads = bench_workloads(seed=args.seed, rate_rps=args.rate,
                                steps=args.steps, n_ranks=args.ranks)
    records = []
    for w in workloads:
        rec = run_one(w, seed=args.seed)
        records.append(rec)
        print(f"  {rec.workload}: {rec.matched} matched in "
              f"{rec.seconds:.3f}s {format_rate(rec.matches_per_second)}")
    serve_table(records).show()
    if not args.no_json:
        append_entry(records, label=args.label, path=serve_report_path())
        print(f"appended entry {args.label!r} to {serve_report_path()}")


if __name__ == "__main__":
    main()
