"""Structured findings for the SIMT sanitizer.

:class:`~repro.simt.sanitize.Sanitizer` is the dynamic-analysis pass; this
module is its output format: one :class:`Finding` per detected defect
(severity, checker, kernel, address/region, barrier epoch) accumulated in
a :class:`SanitizerReport` that callers can inspect, render as a summary,
or turn into a hard failure with :meth:`SanitizerReport.assert_clean`.

Findings are deduplicated on ``(checker, code, address, region, warp,
epoch)`` and
capped per checker so a single buggy loop cannot flood the report; the
suppressed remainder is still counted, so ``counts()`` (and therefore CI
gates) never under-report a firing checker.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

__all__ = ["Finding", "SanitizerReport", "SanitizerError",
           "SEVERITY_ERROR", "SEVERITY_WARNING"]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One sanitizer detection.

    Attributes
    ----------
    checker:
        ``"racecheck"``, ``"synccheck"``, ``"initcheck"`` or ``"ledger"``.
    code:
        Short machine-readable defect slug (``"write-write"``,
        ``"uninit-load"``, ``"region-straddle"``, ...).
    severity:
        ``"error"`` or ``"warning"``.
    message:
        Human-readable description.
    kernel:
        Label of the kernel that was executing (when known).
    address:
        Word address involved (memory checkers).
    region:
        Named :class:`~repro.simt.memory.GlobalMemory` region (when
        resolvable).
    epoch:
        Barrier epoch of the access (racecheck).
    warp_id:
        Warp that triggered the detection (when known).
    """

    checker: str
    code: str
    severity: str
    message: str
    kernel: str | None = None
    address: int | None = None
    region: str | None = None
    epoch: int | None = None
    warp_id: int | None = None


class SanitizerError(RuntimeError):
    """Raised by :meth:`SanitizerReport.assert_clean` on findings."""

    def __init__(self, report: "SanitizerReport") -> None:
        super().__init__(report.summary())
        self.report = report


class SanitizerReport:
    """Accumulated findings of one sanitized run (or several).

    Parameters
    ----------
    max_per_checker:
        Recorded-findings cap per checker; further detections only bump
        the suppressed counter (and still count in :meth:`counts`).
    """

    def __init__(self, max_per_checker: int = 100) -> None:
        self.max_per_checker = max_per_checker
        self.findings: list[Finding] = []
        self.suppressed: Counter = Counter()
        self._seen: set[tuple] = set()
        self._per_checker: Counter = Counter()

    def add(self, finding: Finding) -> bool:
        """Record a finding; returns False when deduplicated/capped."""
        key = (finding.checker, finding.code, finding.address,
               finding.region, finding.warp_id, finding.epoch)
        if key in self._seen or (self._per_checker[finding.checker]
                                 >= self.max_per_checker):
            self.suppressed[finding.checker] += 1
            return False
        self._seen.add(key)
        self._per_checker[finding.checker] += 1
        self.findings.append(finding)
        return True

    @property
    def clean(self) -> bool:
        """True when nothing was detected (including suppressed)."""
        return not self.findings and not self.suppressed

    def by_checker(self, checker: str) -> list[Finding]:
        """Recorded findings of one checker."""
        return [f for f in self.findings if f.checker == checker]

    def counts(self) -> dict[str, int]:
        """Total detections per checker, suppressed included."""
        totals: Counter = Counter(self._per_checker)
        totals.update(self.suppressed)
        return dict(totals)

    def errors(self) -> list[Finding]:
        """Recorded findings with error severity."""
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    def summary(self) -> str:
        """Multi-line human summary (stable ordering)."""
        if self.clean:
            return "sanitizer: clean (no findings)"
        lines = [f"sanitizer: {sum(self.counts().values())} finding(s)"]
        for checker in sorted(self.counts()):
            lines.append(f"  [{checker}] {self.counts()[checker]} "
                         f"({self.suppressed.get(checker, 0)} suppressed)")
            for f in self.by_checker(checker):
                where = []
                if f.kernel is not None:
                    where.append(f"kernel={f.kernel}")
                if f.region is not None:
                    where.append(f"region={f.region!r}")
                if f.address is not None:
                    where.append(f"addr={f.address}")
                if f.epoch is not None:
                    where.append(f"epoch={f.epoch}")
                if f.warp_id is not None:
                    where.append(f"warp={f.warp_id}")
                suffix = f" ({', '.join(where)})" if where else ""
                lines.append(f"    {f.severity}: {f.message}{suffix}")
        return "\n".join(lines)

    def assert_clean(self) -> None:
        """Raise :class:`SanitizerError` unless the report is clean."""
        if not self.clean:
            raise SanitizerError(self)
