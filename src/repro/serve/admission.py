"""Admission control: bounded inboxes and structured load shedding.

Each shard owns a bounded inbox (the sum of its tenants' accumulated
envelopes).  Unbounded queue growth is the classic overload failure --
latency climbs until everything times out -- so the serve layer sheds
instead, in two graduated steps:

* above the **soft watermark** (``soft_fraction * capacity``) new work is
  refused with ``retryable`` and a deterministic virtual-time retry hint;
* at **capacity** new work is refused with ``overloaded`` -- the hard
  backstop.

The retry hint is **derived from virtual time**, not a constant: when
the shard has a pending batch deadline, the hint is exactly the time
until that flush fires (the earliest moment the inbox can have drained);
only an idle shard falls back to the batch-delay default.  Admission
decisions depend only on the current inbox depth, the request's envelope
count, and the virtual clock -- never on wall time or randomness -- so
an identical submitted stream sheds with identical hints on every run
(the determinism contract, pinned by the retry-hint replay test in
``tests/serve/test_state.py``).

The controller also keeps the shed accounting the bench and the obs
layer report: admitted/shed counts per outcome class.
"""

from __future__ import annotations

from dataclasses import dataclass

from .messages import ACCEPTED, OVERLOADED, RETRYABLE

__all__ = ["AdmissionPolicy", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounded-inbox parameters of one shard.

    Parameters
    ----------
    capacity:
        Hard bound on a shard's pending envelopes.  A request whose
        envelopes would push the inbox past this is shed ``overloaded``.
    soft_fraction:
        Fraction of capacity past which new requests are shed
        ``retryable`` instead of admitted (graceful degradation ahead of
        the hard wall).  ``1.0`` disables the soft band.
    retry_after_vt:
        Virtual-seconds hint returned with ``retryable`` tickets.
        ``None`` derives it from the batch policy's flush delay.
    """

    capacity: int = 8192
    soft_fraction: float = 0.75
    retry_after_vt: float | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < self.soft_fraction <= 1.0:
            raise ValueError("soft_fraction must be in (0, 1]")

    @property
    def soft_watermark(self) -> int:
        """Inbox depth at which the retryable band starts."""
        return int(self.soft_fraction * self.capacity)


class AdmissionController:
    """Stateful admission decisions + shed accounting for one shard."""

    def __init__(self, policy: AdmissionPolicy | None = None,
                 default_retry_after_vt: float = 1e-3) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._retry_after = (self.policy.retry_after_vt
                             if self.policy.retry_after_vt is not None
                             else default_retry_after_vt)
        self.admitted = 0
        self.shed_retryable = 0
        self.shed_overloaded = 0
        #: requests refused with a ``migrating`` hint (counted by the
        #: shard's migration path, not by :meth:`decide`)
        self.shed_migrating = 0

    @property
    def shed_total(self) -> int:
        """All shed requests, every class."""
        return self.shed_retryable + self.shed_overloaded + self.shed_migrating

    def counts(self) -> dict[str, int]:
        """Admission accounting under one set of key names.

        The single source of the per-class counter keys: the service's
        aggregate ``shed_counts``, the cluster router's per-worker stats
        frames, and the serve report all read this dict, so a renamed
        counter cannot silently diverge between the in-process and
        multi-process planes.
        """
        return {"admitted": self.admitted,
                "retryable": self.shed_retryable,
                "overloaded": self.shed_overloaded,
                "migrating": self.shed_migrating}

    def retry_hint(self, now_vt: float | None = None,
                   next_flush_vt: float | None = None) -> float:
        """Deterministic relative retry hint (virtual seconds from now).

        A configured ``AdmissionPolicy.retry_after_vt`` always wins.
        Otherwise the hint is derived from virtual time: the span until
        the shard's next pending batch deadline (the earliest moment the
        inbox can have drained), falling back to the batch-delay default
        only when the shard has no deadline armed (or the deadline is
        already due).
        """
        if self.policy.retry_after_vt is not None:
            return self.policy.retry_after_vt
        if (now_vt is not None and next_flush_vt is not None
                and next_flush_vt > now_vt):
            return next_flush_vt - now_vt
        return self._retry_after

    def decide(self, n_envelopes: int, inbox_depth: int,
               now_vt: float | None = None,
               next_flush_vt: float | None = None,
               ) -> tuple[str, float | None, str]:
        """Admit or shed a request of ``n_envelopes`` at the given depth.

        Returns ``(status, retry_after_vt, reason)`` with the retry hint
        *relative* to now (see :meth:`retry_hint`).  Oversized requests
        (bigger than the whole inbox) are always ``overloaded``: no
        amount of retrying can admit them under this policy.
        """
        pol = self.policy
        if n_envelopes > pol.capacity:
            self.shed_overloaded += 1
            return (OVERLOADED, None,
                    f"request of {n_envelopes} envelopes exceeds shard "
                    f"capacity {pol.capacity}")
        if inbox_depth + n_envelopes > pol.capacity:
            self.shed_overloaded += 1
            return (OVERLOADED, None,
                    f"inbox full ({inbox_depth}/{pol.capacity})")
        if (pol.soft_fraction < 1.0
                and inbox_depth + n_envelopes > pol.soft_watermark):
            self.shed_retryable += 1
            return (RETRYABLE, self.retry_hint(now_vt, next_flush_vt),
                    f"inbox above soft watermark "
                    f"({inbox_depth}/{pol.soft_watermark})")
        self.admitted += 1
        return (ACCEPTED, None, "")

    # -- snapshot format ---------------------------------------------------------

    def export_state(self) -> dict:
        """Shed accounting for the serve snapshot format."""
        return {"admitted": self.admitted,
                "shed_retryable": self.shed_retryable,
                "shed_overloaded": self.shed_overloaded,
                "shed_migrating": self.shed_migrating}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`export_state` (policy is rebuilt separately)."""
        self.admitted = int(state["admitted"])
        self.shed_retryable = int(state["shed_retryable"])
        self.shed_overloaded = int(state["shed_overloaded"])
        self.shed_migrating = int(state["shed_migrating"])
