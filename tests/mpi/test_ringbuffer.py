"""Ingress rings and credit-style flow control."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import Cluster
from repro.mpi.ringbuffer import IngressRings, RingBuffer


class TestRingBuffer:
    def test_fifo(self):
        ring = RingBuffer(4)
        for i in range(4):
            assert ring.try_push(i)
        assert [ring.pop() for _ in range(4)] == [0, 1, 2, 3]
        assert ring.pop() is None

    def test_full_rejects(self):
        ring = RingBuffer(2)
        assert ring.try_push("a") and ring.try_push("b")
        assert ring.full
        assert not ring.try_push("c")
        assert ring.rejected == 1
        ring.pop()
        assert ring.try_push("c")

    def test_wraparound(self):
        ring = RingBuffer(3)
        for i in range(100):
            assert ring.try_push(i)
            assert ring.pop() == i
        assert len(ring) == 0
        assert ring.pushes == 100

    def test_peek(self):
        ring = RingBuffer(2)
        assert ring.peek() is None
        ring.try_push("x")
        assert ring.peek() == "x"
        assert len(ring) == 1  # not consumed

    def test_high_watermark(self):
        ring = RingBuffer(8)
        for i in range(5):
            ring.try_push(i)
        ring.pop()
        assert ring.high_watermark == 5

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_repush_counted_separately(self):
        """Retries of rejected stores must not inflate first-time
        rejection counts (they would double-count flow-control events)."""
        ring = RingBuffer(1)
        assert ring.try_push("a")
        assert not ring.try_push("b")              # first-time rejection
        assert not ring.try_push("b", retry=True)  # flow-control retry
        assert ring.rejected == 1
        assert ring.repush_attempts == 1
        assert ring.repush_rejected == 1
        assert ring.drops == 2
        ring.pop()
        assert ring.try_push("b", retry=True)      # successful retry
        assert ring.repush_attempts == 2
        assert ring.repush_rejected == 1
        assert ring.pushes == 2

    def test_stats_dict_mirrors_ingress_rings(self):
        ring = RingBuffer(4)
        ring.try_push("x")
        ring.try_push("y")
        st_ = ring.stats()
        assert st_["capacity"] == 4
        assert st_["queued"] == 2
        assert st_["free_slots"] == 2
        assert st_["pushes"] == 2
        assert st_["rejected"] == 0
        assert st_["high_watermark"] == 2
        # same keys as the aggregate where they overlap
        from repro.mpi.ringbuffer import IngressRings
        agg = IngressRings(capacity=4)
        agg.try_push(0, "x")
        shared = {"queued", "pushes", "rejected", "repush_attempts",
                  "repush_rejected", "drops", "high_watermark"}
        assert shared <= set(st_) and shared <= set(agg.stats())

    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=200),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_deque(self, ops, capacity):
        """Ring behaviour == bounded FIFO for any push/pop interleaving."""
        from collections import deque
        ring = RingBuffer(capacity)
        ref: deque = deque()
        counter = 0
        for op in ops:
            if op == "push":
                ok = ring.try_push(counter)
                assert ok == (len(ref) < capacity)
                if ok:
                    ref.append(counter)
                counter += 1
            else:
                got = ring.pop()
                want = ref.popleft() if ref else None
                assert got == want
        assert len(ring) == len(ref)


class TestIngressRings:
    def test_per_peer_isolation(self):
        rings = IngressRings(capacity=2)
        assert rings.try_push(0, "a0")
        assert rings.try_push(1, "b0")
        assert rings.try_push(0, "a1")
        assert not rings.try_push(0, "a2")  # peer 0 full
        assert rings.try_push(1, "b1")      # peer 1 unaffected
        assert rings.queued == 4

    def test_drain_round_robin_with_budget(self):
        rings = IngressRings(capacity=8)
        for i in range(4):
            rings.try_push(0, f"a{i}")
            rings.try_push(1, f"b{i}")
        first = rings.drain(budget=4)
        assert len(first) == 4
        # round-robin: both peers drained evenly
        assert sum(x.startswith("a") for x in first) == 2
        rest = rings.drain()
        assert len(rest) == 4

    def test_stats(self):
        rings = IngressRings(capacity=1)
        rings.try_push(3, "x")
        rings.try_push(3, "y")
        st_ = rings.stats()
        assert st_["peers"] == 1
        assert st_["pushes"] == 1
        assert st_["rejected"] == 1
        assert st_["high_watermark"] == 1


class TestClusterFlowControl:
    def test_overflow_holds_channel_and_preserves_order(self):
        c = Cluster(2, ring_capacity=4)
        for i in range(12):
            c.rank(0).isend(1, i, tag=i)
        assert c.network.held_messages == 8
        got = [c.rank(1).recv(src=0, tag=i) for i in range(12)]
        assert got == list(range(12))
        assert c.network.held_messages == 0

    def test_per_channel_isolation(self):
        c = Cluster(3, ring_capacity=2)
        for i in range(6):
            c.rank(0).isend(2, i, tag=i)   # overflows 0->2
        c.rank(1).isend(2, b"ok", tag=99)  # 1->2 ring is its own
        assert c.rank(2).recv(src=1, tag=99) == b"ok"

    def test_pair_ordering_survives_backpressure(self):
        """Messages released from the hold queue must not overtake."""
        c = Cluster(2, ring_capacity=1)
        for i in range(20):
            c.rank(0).isend(1, i, tag=7)
        got = [c.rank(1).recv(src=0, tag=7) for _ in range(20)]
        assert got == list(range(20))

    def test_drain_flushes_held_traffic(self):
        c = Cluster(2, ring_capacity=2)
        reqs = [c.rank(1).irecv(src=0, tag=i) for i in range(10)]
        for i in range(10):
            c.rank(0).isend(1, i, tag=i)
        c.drain()
        assert all(r.test() for r in reqs)
        assert c.network.held_messages == 0

    def test_ring_stats_exposed(self):
        c = Cluster(2, ring_capacity=4)
        c.rank(0).isend(1, b"x", tag=0)
        c.rank(1).recv(src=0, tag=0)
        rings = c.stats()[1]["rings"]
        assert rings["pushes"] == 1 and rings["peers"] == 1

    def test_held_channel_retries_count_as_repushes(self):
        c = Cluster(2, ring_capacity=1)
        for i in range(4):
            c.rank(0).isend(1, i, tag=i)
        for i in range(4):
            c.rank(1).recv(src=0, tag=i)
        rings = c.stats()[1]["rings"]
        assert rings["rejected"] >= 1          # the store that forced the hold
        assert rings["repush_attempts"] >= 1   # network retries of the head
        assert rings["rejected"] + rings["repush_rejected"] == rings["drops"]

    def test_default_cluster_has_no_rings(self):
        c = Cluster(2)
        assert c.stats()[0]["rings"] is None

    def test_collectives_under_tight_rings(self):
        """Whole collectives complete through capacity-1 rings."""
        from repro.mpi import Communicator, alltoall, barrier
        comm = Communicator(Cluster(4, ring_capacity=1))
        barrier(comm)
        out = alltoall(comm, [[(i, j) for j in range(4)] for i in range(4)])
        assert out[3][1] == (1, 3)


class TestStaticQueueCapacity:
    def test_umq_overflow_raises(self):
        import pytest as _pytest
        c = Cluster(2, queue_capacity=8)
        for i in range(8):
            c.rank(0).isend(1, i, tag=i)
        with _pytest.raises(OverflowError, match="statically sized"):
            c.rank(0).isend(1, 99, tag=99)

    def test_prq_overflow_raises(self):
        import pytest as _pytest
        c = Cluster(2, queue_capacity=4)
        for t in range(4):
            c.rank(1).irecv(src=0, tag=t)
        with _pytest.raises(OverflowError):
            c.rank(1).irecv(src=0, tag=99)

    def test_consumed_entries_free_capacity(self):
        c = Cluster(2, queue_capacity=4)
        for round_ in range(5):
            reqs = [c.rank(1).irecv(src=0, tag=t) for t in range(4)]
            for t in range(4):
                c.rank(0).isend(1, (round_, t), tag=t)
            assert [r.wait() for r in reqs] == [(round_, t)
                                                for t in range(4)]

    def test_rings_protect_the_umq(self):
        """With ingress rings in front, a flood backs up in the network
        holds instead of overflowing the static UMQ."""
        c = Cluster(2, queue_capacity=8, ring_capacity=8)
        for i in range(64):
            c.rank(0).isend(1, i, tag=5)
        # nothing overflowed; traffic is parked at rings + channel holds
        got = [c.rank(1).recv(src=0, tag=5) for _ in range(64)]
        assert got == list(range(64))
