"""Trace event records and the trace container.

The paper analyzes DOE exascale proxy applications from **dumpi** trace
files (Section II-C).  Those multi-gigabyte traces are not shipped with
the mini-apps, so this package generates *synthetic* traces whose
matching-relevant statistics land on the values the paper reports
(Table I, Figure 2, Figure 6(a)) -- see DESIGN.md section 2 for the
substitution argument.  The event schema below mirrors the dumpi fields
the paper's analysis needs.

A :class:`Trace` is a globally time-ordered sequence of events:

* :class:`SendEvent` -- rank issued MPI_(I)Send(dst, tag, comm);
* :class:`RecvPostEvent` -- rank posted MPI_(I)Recv(src, tag, comm),
  where src/tag may be wildcards;
* :class:`BarrierEvent` -- collective synchronization marker (ends a
  BSP superstep; tags may be reused afterwards).

The analyzer and queue replay are pure consumers of this schema: a real
dumpi parser could emit the same events and everything downstream would
work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["SendEvent", "RecvPostEvent", "BarrierEvent", "Trace"]


@dataclass(frozen=True)
class SendEvent:
    """A send operation as recorded at the source rank."""

    time: float
    rank: int
    dst: int
    tag: int
    comm: int = 0
    nbytes: int = 8

    kind = "send"


@dataclass(frozen=True)
class RecvPostEvent:
    """A receive request being posted (src/tag may be -1 wildcards)."""

    time: float
    rank: int
    src: int
    tag: int
    comm: int = 0

    kind = "post_recv"


@dataclass(frozen=True)
class BarrierEvent:
    """A synchronization point across all ranks (superstep boundary)."""

    time: float
    rank: int

    kind = "barrier"


class Trace:
    """A time-ordered event stream for one application run.

    Parameters
    ----------
    app:
        Application name (e.g. ``"exmatex_lulesh"``).
    n_ranks:
        Ranks in the run.
    events:
        Events in global time order (validated on construction).
    meta:
        Generator parameters (steps, seed, geometry, ...), recorded for
        reproducibility.
    """

    def __init__(self, app: str, n_ranks: int,
                 events: Iterable, meta: dict | None = None) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be positive")
        self.app = app
        self.n_ranks = n_ranks
        self.events = list(events)
        self.meta = dict(meta or {})
        last_t = float("-inf")
        for ev in self.events:
            if ev.time < last_t:
                raise ValueError(
                    f"events out of time order at t={ev.time} (< {last_t})")
            last_t = ev.time
            if not 0 <= ev.rank < n_ranks:
                raise ValueError(f"event rank {ev.rank} out of range")
            if ev.kind == "send" and not 0 <= ev.dst < n_ranks:
                raise ValueError(f"send dst {ev.dst} out of range")

    # -- container protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator:
        return iter(self.events)

    def __repr__(self) -> str:
        return (f"Trace(app={self.app!r}, ranks={self.n_ranks}, "
                f"events={len(self.events)})")

    # -- filters ----------------------------------------------------------------------

    def sends(self) -> list[SendEvent]:
        """All send events, time order."""
        return [e for e in self.events if e.kind == "send"]

    def recv_posts(self) -> list[RecvPostEvent]:
        """All receive-post events, time order."""
        return [e for e in self.events if e.kind == "post_recv"]

    def barriers(self) -> list[BarrierEvent]:
        """All barrier markers."""
        return [e for e in self.events if e.kind == "barrier"]

    def for_rank(self, rank: int) -> list:
        """Events local to one rank (sends it issued, recvs it posted)."""
        return [e for e in self.events if e.rank == rank]

    def validate_balance(self) -> dict:
        """Sanity counters: sends vs receive posts per (src, dst) channel.

        Synthetic generators should produce balanced traces (every send
        eventually receivable); the replay tolerates imbalance but the
        generator tests check this.
        """
        sends = len(self.sends())
        posts = len(self.recv_posts())
        return {"sends": sends, "recv_posts": posts,
                "balanced": sends == posts}
