#!/usr/bin/env python
"""Quickstart: match messages on a simulated GPU under each relaxation.

Walks the paper's core idea end to end:

1. build a synthetic workload of message envelopes and receive requests;
2. match it with full MPI semantics (matrix scan+reduce on the simulated
   Pascal GTX 1080);
3. progressively relax the guarantees -- no source wildcard (partitioned
   queues), then no ordering (two-level hash table) -- and watch the
   matching rate climb from ~6M to ~60M to ~500M matches/s, the paper's
   headline numbers.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import EnvelopeBatch, GPU, MatchingEngine, TABLE_II_CONFIGS


def build_workload(n: int = 1024, seed: int = 7):
    """Random fully-matchable queues, the paper's microbenchmark shape."""
    rng = np.random.default_rng(seed)
    messages = EnvelopeBatch.random(n, n_ranks=64, n_tags=64, rng=rng)
    requests = messages.take(rng.permutation(n))
    return messages, requests


def main() -> None:
    gpu = GPU.pascal_gtx1080()
    messages, requests = build_workload()
    print(f"Workload: {len(messages)} messages / {len(requests)} receive "
          f"requests on a simulated {gpu.name}\n")

    print(f"{'relaxation set':18s} {'structure':10s} {'matched':>8s} "
          f"{'rate':>12s}")
    print("-" * 54)
    for relaxations in TABLE_II_CONFIGS:
        engine = MatchingEngine(gpu=gpu, relaxations=relaxations,
                                n_queues=32, n_ctas=32, verify=True)
        outcome = engine.match(messages, requests)
        rate = outcome.matches_per_second()
        print(f"{relaxations.label():18s} {engine.data_structure:10s} "
              f"{outcome.matched_count:8d} {rate / 1e6:9.1f} M/s")

    # The individual matchers are available directly, too.  The paper's
    # 10x/80x headline speedups are quoted against the matrix matcher's
    # *steady* rate (~6M on Pascal, queues below the 1024 knee):
    from repro import HashMatcher, MatrixMatcher, PartitionedMatcher
    m512, r512 = build_workload(512)
    steady = MatrixMatcher(spec=gpu).match(m512, r512)
    part = PartitionedMatcher(spec=gpu, n_queues=32).match(messages, requests)
    fast = HashMatcher(spec=gpu, n_ctas=32).match(messages, requests)
    base = steady.matches_per_second()
    print(f"\nSpeedups over the MPI-compliant steady rate "
          f"({base / 1e6:.1f} M/s): "
          f"partitioned {part.matches_per_second() / base:.0f}x, "
          f"hash {fast.matches_per_second() / base:.0f}x "
          f"(paper: ~10x and ~80x)")

    # Every outcome carries the assignment itself:
    pairs = steady.pairs()[:3]
    print(f"\nFirst assignments (request -> message): {pairs}")
    print(f"Simulated matching time (MPI semantics): "
          f"{steady.seconds * 1e6:.1f} us for {steady.matched_count} matches")


if __name__ == "__main__":
    main()
