"""Open-loop load generation from proxy-application traces.

The serve bench needs realistic tenant streams, and the repository
already models thirteen DOE proxy applications (:mod:`repro.traces.apps`)
whose matching-relevant statistics land on the paper's Table I.  This
module turns a trace into a serve workload:

* pick the trace's **busiest rank** (most arriving messages + posted
  receives -- the worst-case matching queue of the app);
* cut that rank's event stream into request-sized chunks *in trace
  order* (messages = sends addressed to the rank, receive requests =
  posts by the rank), preserving the interleaving MPI matching depends
  on;
* assign arrival times **open-loop**: a seeded Poisson process at a
  fixed request rate, independent of service completions.  Open-loop is
  the honest overload methodology -- a closed loop slows its own
  offered load exactly when the service degrades, hiding the knee.

``run_workload`` drives a :class:`~repro.serve.service.MatchingService`
through a workload and is the engine under both ``benchmarks/bench_serve.py``
and ``python -m repro serve-demo``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.envelope import EnvelopeBatch
from ..traces import generate_trace
from ..traces.events import Trace
from .admission import AdmissionPolicy
from .batching import BatchPolicy
from .messages import TenantSpec
from .service import MatchingService

__all__ = ["ServeArrival", "ServeWorkload", "busiest_rank",
           "tenant_stream_from_trace", "workload_from_app",
           "merge_workloads", "DEFAULT_BENCH_APPS", "BENCHPARK_BENCH_APPS",
           "run_workload", "demo"]

#: The serve bench's trace-derived workloads: one wildcard-using app
#: (pinned to the matrix path), one ordered app (earns the partitioned
#: path), one ordering-tolerant app (reaches the hash path).
DEFAULT_BENCH_APPS: tuple[tuple[str, bool], ...] = (
    ("df_minife", True),        # MPI_ANY_SOURCE user -> matrix
    ("exmatex_lulesh", True),   # no wildcards, ordered -> partitioned
    ("df_amg", False),          # no wildcards, unordered-tolerant -> hash
)

#: The Benchpark re-fire workloads: huge per-pair counts over a tiny
#: tuple cardinality, declared ``partitioned`` so the autotuner pins the
#: match-once lattice point instead of oscillating on the hash gate.
BENCHPARK_BENCH_APPS: tuple[tuple[str, bool], ...] = (
    ("bp_amg2023", True),       # V-cycle halo re-fires (tag = level)
    ("bp_kripke", True),        # KBA sweep chunks (tag = octant)
    ("bp_laghos", True),        # fixed unstructured halo (2 tags)
)


@dataclass(frozen=True)
class ServeArrival:
    """One open-loop arrival: a request's content and virtual time."""

    vt: float
    tenant: str
    messages: EnvelopeBatch
    requests: EnvelopeBatch


@dataclass(frozen=True)
class ServeWorkload:
    """A named multi-tenant arrival stream (sorted by virtual time)."""

    name: str
    tenants: tuple[TenantSpec, ...]
    arrivals: tuple[ServeArrival, ...]

    @property
    def n_envelopes(self) -> int:
        return sum(len(a.messages) + len(a.requests) for a in self.arrivals)


def _trace_columns(trace: Trace) -> dict[str, np.ndarray]:
    """The trace's matching-relevant events as packed NumPy columns.

    One Python pass over the event objects (the unavoidable boundary
    between the object-shaped trace schema and the columnar data plane);
    everything downstream -- busiest-rank selection, chunk cutting,
    envelope packing -- is pure array work on these columns.  Cached in
    ``trace.meta`` so the pass runs once per trace.

    Columns cover sends and receive posts only, trace order preserved:
    ``is_msg`` flags sends; ``owner`` is the matching rank (``dst`` for
    sends, the posting rank for receives); ``src`` is the envelope
    source (sender rank for sends, possibly-wildcard ``src`` for posts).
    """
    cached = trace.meta.get("_loadgen_columns")
    if cached is not None and cached["n_events"] == len(trace.events):
        return cached
    is_msg: list[bool] = []
    owner: list[int] = []
    src: list[int] = []
    tag: list[int] = []
    comm: list[int] = []
    for ev in trace.events:
        if ev.kind == "send":
            is_msg.append(True)
            owner.append(ev.dst)
            src.append(ev.rank)
        elif ev.kind == "post_recv":
            is_msg.append(False)
            owner.append(ev.rank)
            src.append(ev.src)
        else:
            continue
        tag.append(ev.tag)
        comm.append(ev.comm)
    cols = {
        "n_events": len(trace.events),
        "is_msg": np.asarray(is_msg, dtype=bool),
        "owner": np.asarray(owner, dtype=np.int64),
        "src": np.asarray(src, dtype=np.int64),
        "tag": np.asarray(tag, dtype=np.int64),
        "comm": np.asarray(comm, dtype=np.int64),
    }
    trace.meta["_loadgen_columns"] = cols
    return cols


def busiest_rank(trace: Trace) -> int:
    """The rank with the most matching work (arrivals + posts);
    deterministic lowest-index tie-break."""
    cols = _trace_columns(trace)
    load = np.bincount(cols["owner"], minlength=trace.n_ranks)
    return int(np.argmax(load))


def tenant_stream_from_trace(trace: Trace, rank: int, chunk_envelopes: int = 64,
                             ) -> list[tuple[EnvelopeBatch, EnvelopeBatch]]:
    """Cut one rank's matching stream into request-sized column blocks.

    Each chunk is ``(messages, requests)`` in trace order: messages are
    sends addressed to ``rank`` (src = sender), requests are the
    receives ``rank`` posted (wildcards preserved).  Order within and
    across chunks follows the trace, which is what MPI matching
    semantics key on.

    Chunks are zero-copy views into one contiguous column set per rank
    stream; the message side additionally carries its packed64 key
    column, computed here exactly once, so no layer between the loadgen
    and the matcher ever re-packs an envelope.
    """
    if chunk_envelopes < 1:
        raise ValueError("chunk_envelopes must be >= 1")
    cols = _trace_columns(trace)
    mine = cols["owner"] == rank
    is_msg = cols["is_msg"][mine]
    src = cols["src"][mine]
    tag = cols["tag"][mine]
    comm = cols["comm"][mine]
    # Pack the whole stream's message keys in one shot.  Request rows
    # may carry wildcards and are never packed (the packed form has no
    # wildcard encoding); their lanes here are dead values.
    packed = (comm << 48) | (src << 16) | tag
    chunks: list[tuple[EnvelopeBatch, EnvelopeBatch]] = []
    for lo in range(0, int(src.size), chunk_envelopes):
        sel = slice(lo, lo + chunk_envelopes)
        msg = is_msg[sel]
        req = ~msg
        chunks.append((
            EnvelopeBatch.view(src[sel][msg], tag[sel][msg], comm[sel][msg],
                               packed=packed[sel][msg]),
            EnvelopeBatch.view(src[sel][req], tag[sel][req], comm[sel][req])))
    return chunks


def workload_from_app(app: str, *, rate_rps: float = 2000.0,
                      n_ranks: int | None = None, steps: int | None = None,
                      chunk_envelopes: int = 64, seed: int = 0,
                      ordering_required: bool = True,
                      tenant_name: str | None = None,
                      session: bool = False,
                      partitioned: bool = False) -> ServeWorkload:
    """Build a one-tenant open-loop workload from a proxy-app trace.

    ``rate_rps`` is the offered request rate in requests per *virtual*
    second; arrivals are a seeded Poisson process (open-loop).
    ``session=True`` declares the tenant persistent-UMQ: unmatched
    envelopes carry over between flushes instead of being dropped.
    ``partitioned=True`` declares a match-once/fire-many stream, which
    pins the autotuner at the partitioned lattice point (the natural
    declaration for the Benchpark re-fire workloads).
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    trace = generate_trace(app, n_ranks=n_ranks, steps=steps, seed=seed)
    rank = busiest_rank(trace)
    chunks = tenant_stream_from_trace(trace, rank,
                                      chunk_envelopes=chunk_envelopes)
    name = tenant_name if tenant_name is not None else app
    spec = TenantSpec(name=name, ordering_required=ordering_required,
                      session=session, partitioned=partitioned)
    rng = np.random.default_rng(seed + 0x10AD)
    gaps = rng.exponential(1.0 / rate_rps, size=len(chunks))
    times = np.cumsum(gaps)
    arrivals = tuple(
        ServeArrival(vt=float(t), tenant=name, messages=m, requests=r)
        for t, (m, r) in zip(times, chunks))
    return ServeWorkload(name=app, tenants=(spec,), arrivals=arrivals)


def merge_workloads(name: str,
                    workloads: list[ServeWorkload]) -> ServeWorkload:
    """Interleave several workloads into one multi-tenant stream."""
    arrivals = sorted((a for w in workloads for a in w.arrivals),
                      key=lambda a: (a.vt, a.tenant))
    tenants = tuple(t for w in workloads for t in w.tenants)
    return ServeWorkload(name=name, tenants=tenants,
                         arrivals=tuple(arrivals))


def run_workload(workload: ServeWorkload, *, n_shards: int = 1,
                 admission: AdmissionPolicy | None = None,
                 batching: BatchPolicy | None = None, seed: int = 0,
                 promote_after: int = 3, profile_window: int = 8,
                 verify: bool = False, obs=None, stages=None,
                 ) -> tuple[MatchingService, float]:
    """Drive a service through a workload; returns (service, wall seconds).

    Wall time covers the submission loop plus the final drain -- the
    sustained host-side serving rate -- and is measurement-only: no
    decision inside the service reads it.  An optional
    :class:`~repro.serve.stages.StageClock` additionally splits that
    wall time across the pipeline stages.
    """
    service = MatchingService(n_shards=n_shards, admission=admission,
                              batching=batching, seed=seed,
                              promote_after=promote_after,
                              profile_window=profile_window,
                              verify=verify, obs=obs, stages=stages)
    for spec in workload.tenants:
        service.register(spec)
    t0 = time.perf_counter()
    for arrival in workload.arrivals:
        service.submit(arrival.tenant, arrival.messages, arrival.requests,
                       at_vt=arrival.vt)
    if workload.arrivals:
        # run out every armed deadline timer before the final drain
        last_deadline = service.loop.now + (
            service.shards[0].batching.max_delay_vt * 2)
        service.advance_to(last_deadline)
    service.drain()
    wall = time.perf_counter() - t0
    return service, wall


def demo(seed: int = 0, steps: int = 3, n_ranks: int = 16,
         rate_rps: float = 4000.0, obs=None,
         ) -> tuple[MatchingService, ServeWorkload, float]:
    """A small three-tenant serve scenario (the CLI's ``serve-demo``)."""
    parts = [
        workload_from_app(app, rate_rps=rate_rps, n_ranks=n_ranks,
                          steps=steps, seed=seed,
                          ordering_required=ordering_required)
        for app, ordering_required in DEFAULT_BENCH_APPS
    ]
    workload = merge_workloads("serve-demo", parts)
    service, wall = run_workload(workload, n_shards=2, seed=seed,
                                 promote_after=2, obs=obs)
    return service, workload, wall
