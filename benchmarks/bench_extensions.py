"""Extension experiments: the paper's Section VII-C architectural wishes.

EXT1 -- **variable warp sizes** ("we endorse new architectural features
like variable warp sizes, which helps with the matching of shorter
queues"): sub-32-lane warps remove the lane-rounding waste of many small
partitioned queues, cutting CTA counts and wave serialization.

EXT2 -- **dynamic parallelism** ("better dynamic parallelism, which
allows for adjusting kernel parameters to queue sizes"): the adaptive
planner re-selects structure / queue count / warp size per pass and is
compared against every fixed configuration on a mixed queue-size
workload stream.

EXT3 -- **tag partitioning** (Section VI: "prohibiting tag wildcards
would allow to further partition among tags, but tags are usually not
uniformly distributed, resulting in an imbalanced utilization of
queues"): tag-partitioned queues match rank-partitioned ones on uniform
tag workloads and collapse on realistic skewed tag distributions.

EXT4 -- **collision-resolution policy** (the paper's declared future
work): linear probing inside each hash-table level trades more probes
per round for fewer rounds; the sweep shows the sweet spot on tight
tables.
"""

from __future__ import annotations

import pytest

import numpy as np

from repro.bench import Table, format_rate, matching_workload, write_result
from repro.core.adaptive import AdaptiveMatcher
from repro.core.envelope import EnvelopeBatch
from repro.core.hash_matching import HashMatcher, HashTableConfig
from repro.core.matrix_matching import MatrixMatcher
from repro.core.partitioned import PartitionedMatcher

WARP_SIZES = (4, 8, 16, 32)


def test_report_ext1_variable_warp_size():
    table = Table(
        title="EXT1 -- variable warp size on many small partitioned "
              "queues (Pascal)",
        columns=["queues", "depth/queue", "W=4", "W=8", "W=16", "W=32",
                 "CTAs W=4 vs 32"])
    gains = {}
    for n, q in ((1024, 128), (1024, 32), (4096, 128)):
        msgs, reqs = matching_workload(n, n_ranks=256, n_tags=8)
        rates = {}
        ctas = {}
        for w in WARP_SIZES:
            o = PartitionedMatcher(n_queues=q, warp_size=w).match(msgs, reqs)
            rates[w] = o.matches_per_second()
            ctas[w] = o.meta["ctas"]
        gains[(n, q)] = rates[4] / rates[32]
        table.add(q, n // q, *(format_rate(rates[w]) for w in WARP_SIZES),
                  f"{ctas[4]} vs {ctas[32]}")
    table.note("paper (Sec. VII-C): variable warp sizes 'help with the "
               "matching of shorter queues'")
    write_result("ext1_warp_size", table.show())
    # tiny queues (depth 8): narrow warps must win; 32-deep queues: ~tie
    assert gains[(1024, 128)] > 1.2
    assert gains[(1024, 32)] == pytest.approx(1.0, abs=0.25)


def test_report_ext2_adaptive():
    # a bursty stream alternating shallow and deep matching passes
    stream = [matching_workload(n, n_ranks=64, n_tags=16, seed=i)
              for i, n in enumerate((48, 2048, 64, 4096, 32, 1024, 8192))]
    contenders = {
        "matrix (fixed)": lambda: MatrixMatcher(),
        "partitioned Q=32 (fixed)": lambda: PartitionedMatcher(n_queues=32),
        "adaptive": lambda: AdaptiveMatcher(),
    }
    table = Table(
        title="EXT2 -- adaptive kernel configuration on a mixed stream "
              "(Pascal)",
        columns=["matcher", "total matches", "total time", "aggregate rate"])
    rates = {}
    for label, factory in contenders.items():
        matcher = factory()
        seconds = 0.0
        matched = 0
        for msgs, reqs in stream:
            o = matcher.match(msgs, reqs)
            seconds += o.seconds
            matched += o.matched_count
        rates[label] = matched / seconds
        table.add(label, matched, f"{seconds * 1e6:.0f} us",
                  format_rate(rates[label]))
    table.note("the adaptive planner pays relaunch overhead when the "
               "stream's shape shifts, and still wins overall")
    write_result("ext2_adaptive", table.show())
    assert rates["adaptive"] > rates["matrix (fixed)"]
    assert rates["adaptive"] >= 0.95 * rates["partitioned Q=32 (fixed)"]


def _zipf_tag_workload(n: int, n_tags: int, seed: int = 0):
    """Tags drawn from a Zipf-like distribution (realistic skew)."""
    rng = np.random.default_rng(seed)
    ranks = rng.integers(0, 64, size=n)
    weights = 1.0 / np.arange(1, n_tags + 1) ** 1.3
    weights /= weights.sum()
    tags = rng.choice(n_tags, size=n, p=weights)
    msgs = EnvelopeBatch(src=ranks, tag=tags)
    return msgs, msgs.take(rng.permutation(n))


def test_report_ext3_tag_partitioning():
    uniform = matching_workload(2048, n_ranks=64, n_tags=64)
    skewed = _zipf_tag_workload(2048, n_tags=64)
    table = Table(
        title="EXT3 -- partition key choice vs tag distribution "
              "(Pascal, 2048 elements, Q=16)",
        columns=["workload", "partition by src", "partition by tag",
                 "tag active queues"])
    rates = {}
    for label, wl in (("uniform tags", uniform), ("zipf tags", skewed)):
        by_src = PartitionedMatcher(n_queues=16).match(*wl)
        by_tag = PartitionedMatcher(n_queues=16,
                                    partition_key="tag").match(*wl)
        rates[label] = (by_src.matches_per_second(),
                        by_tag.matches_per_second())
        table.add(label, format_rate(rates[label][0]),
                  format_rate(rates[label][1]),
                  by_tag.meta["n_active_queues"])
    table.note("paper: tag partitioning suffers from non-uniform tag use")
    write_result("ext3_tag_partitioning", table.show())
    # uniform tags: the two keys are equivalent within noise
    assert rates["uniform tags"][1] == pytest.approx(
        rates["uniform tags"][0], rel=0.35)
    # skewed tags: tag partitioning loses substantially
    assert rates["zipf tags"][1] < 0.6 * rates["zipf tags"][0]


def test_report_ext4_probe_depth():
    msgs, reqs = matching_workload(512, n_ranks=16, n_tags=8, seed=3)
    table = Table(
        title="EXT4 -- linear probe depth on a tight table "
              "(scale 1.1, duplicate-heavy keys)",
        columns=["probe depth", "rounds", "collisions", "rate"])
    rounds = {}
    for depth in (1, 2, 4, 8):
        cfg = HashTableConfig(probe_depth=depth, scale=1.1)
        o = HashMatcher(config=cfg).match(msgs, reqs)
        assert o.matched_count == 512
        rounds[depth] = o.iterations
        table.add(depth, o.iterations, o.meta["collisions"],
                  format_rate(o.matches_per_second()))
    table.note("the paper's policy is depth 1 (collide -> next level -> "
               "defer); deeper probing trades per-round cost for rounds")
    write_result("ext4_probe_depth", table.show())
    assert rounds[8] < rounds[1]


@pytest.mark.parametrize("w", [8, 32])
def test_perf_partitioned_warp_size(benchmark, w):
    msgs, reqs = matching_workload(1024, n_ranks=256, n_tags=8)
    matcher = PartitionedMatcher(n_queues=128, warp_size=w)
    outcome = benchmark(matcher.match, msgs, reqs)
    assert outcome.matched_count == 1024


def test_perf_adaptive(benchmark):
    msgs, reqs = matching_workload(2048, n_ranks=64, n_tags=16)
    matcher = AdaptiveMatcher()
    outcome = benchmark(matcher.match, msgs, reqs)
    assert outcome.matched_count == 2048


if __name__ == "__main__":
    test_report_ext8_multi_sm()
    test_report_ext1_variable_warp_size()
    test_report_ext2_adaptive()
    test_report_ext3_tag_partitioning()
    test_report_ext4_probe_depth()
