"""EXACT suite models: CNS and MultiGrid.

CNS spreads its messages across the widest peer set of the analyzed apps
(~72 peers, Table I).  MultiGrid is the second long-queue outlier of
Figure 2: per-rank maximum UMQ depth with **mean ~2,000 and median
~1,500** across ranks.
"""

from __future__ import annotations

import numpy as np

from .base import AppModel, TraceBuilder, grid_neighbors, random_neighbors

__all__ = ["CNS", "MultiGrid"]


class CNS(AppModel):
    """Compressible Navier-Stokes with deep ghost zones.

    The high-order stencil reaches past face neighbors: the effective
    exchange partner set is ~72 ranks, still only a fraction of the job
    size ("this is still only a fraction of the total number of ranks").
    """

    name = "exact_cns"
    full_name = "EXACT CNS"
    suite = "exact"
    description = "wide-stencil ghost exchange (~72 peers)"
    default_ranks = 128
    default_steps = 3

    TARGET_PEERS = 72

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        # face halo plus a wide random shell approximating the deep
        # stencil; the random graph is symmetrized, roughly doubling its
        # degree parameter, hence the halving
        face = grid_neighbors(n_ranks, ndim=3, corners=True)
        extra = random_neighbors(
            n_ranks, max(1, int((self.TARGET_PEERS - 26) * 0.86)), rng)
        nbrs = [sorted(set(face[r]) | set(extra[r])) for r in range(n_ranks)]
        for _step in range(steps):
            pairs = [(s, d) for s in range(n_ranks) for d in nbrs[s]]
            b.exchange(pairs, tag_of=lambda s, d, k: k % 5,
                       prepost_fraction=0.65, rng=rng)
            b.barrier(n_ranks)


class MultiGrid(AppModel):
    """Geometric multigrid with aggressively coarsened bottom levels.

    Restriction funnels contributions toward the ranks that own coarse
    grids before they post their receives, building queue depths of
    ~1,500 on typical ranks and several thousand on the coarse-grid
    owners (mean ~2,000 / median ~1,500 in Figure 2).
    """

    name = "exact_multigrid"
    full_name = "EXACT MultiGrid"
    suite = "exact"
    description = "geometric multigrid; restriction floods coarse owners"
    default_ranks = 16
    default_steps = 2

    HOT_FRACTION = 0.125
    HOT_BURST = 5_500
    REGULAR_BURST = 1_500

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        n_hot = max(1, int(self.HOT_FRACTION * n_ranks))
        halo = grid_neighbors(n_ranks, ndim=3, corners=False)
        for _step in range(steps):
            # smoother halo: regular, mostly preposted
            pairs = [(s, d) for s in range(n_ranks) for d in halo[s]]
            b.exchange(pairs, tag_of=lambda s, d, k: 0,
                       msgs_per_pair=2, prepost_fraction=0.8, rng=rng)
            # restriction flood toward coarse-grid owners
            for dst in range(n_ranks):
                burst = self.HOT_BURST if dst < n_hot else self.REGULAR_BURST
                srcs = [s for s in range(n_ranks) if s != dst]
                per_src = max(1, burst // len(srcs))
                for s in srcs:
                    for k in range(per_src):
                        b.send(s, dst, tag=1 + k % 4)
                for s in srcs:
                    for k in range(per_src):
                        b.post(dst, src=s, tag=1 + k % 4)
            b.barrier(n_ranks)
