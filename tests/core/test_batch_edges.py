"""Batching edge cases: empty and single-envelope passes.

The serve layer's accumulator can legally flush a zero-length or a
one-envelope batch (``BatchPolicy(max_envelopes=1)`` is the pass-through
configuration), so every matcher and the engine must treat those shapes
as first-class inputs, not degenerate surprises.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import MatchingEngine
from repro.core.envelope import EnvelopeBatch
from repro.core.hash_matching import HashMatcher
from repro.core.matrix_matching import MatrixMatcher
from repro.core.partitioned import PartitionedMatcher
from repro.core.relaxations import RelaxationSet
from repro.core.result import NO_MATCH

MATCHERS = {
    "matrix": lambda: MatrixMatcher(),
    "partitioned": lambda: PartitionedMatcher(n_queues=4),
    "hash": lambda: HashMatcher(),
}

LATTICE_CONFIGS = (
    RelaxationSet(wildcards=True, ordering=True, unexpected=True),
    RelaxationSet(wildcards=False, ordering=True, unexpected=True),
    RelaxationSet(wildcards=False, ordering=False, unexpected=True),
)

EMPTY = EnvelopeBatch.empty()
ONE = EnvelopeBatch(src=[3], tag=[7])


@pytest.mark.parametrize("name", sorted(MATCHERS))
class TestMatcherEdges:
    def test_empty_by_empty(self, name):
        out = MATCHERS[name]().match(EMPTY, EMPTY)
        assert out.matched_count == 0
        assert out.request_to_message.shape == (0,)
        assert np.isfinite(out.seconds) and out.seconds >= 0

    def test_single_message_no_requests(self, name):
        out = MATCHERS[name]().match(ONE, EMPTY)
        assert out.matched_count == 0
        assert out.n_messages == 1 and out.n_requests == 0

    def test_single_request_no_messages(self, name):
        out = MATCHERS[name]().match(EMPTY, ONE)
        assert out.matched_count == 0
        assert out.request_to_message.tolist() == [NO_MATCH]

    def test_single_envelope_pair_matches(self, name):
        out = MATCHERS[name]().match(ONE, ONE)
        assert out.matched_count == 1
        assert out.request_to_message.tolist() == [0]

    def test_single_envelope_pair_mismatch(self, name):
        out = MATCHERS[name]().match(ONE, EnvelopeBatch(src=[3], tag=[8]))
        assert out.matched_count == 0


@pytest.mark.parametrize("rel", LATTICE_CONFIGS,
                         ids=lambda r: r.label())
class TestEngineEdges:
    def test_empty_batches(self, rel):
        out = MatchingEngine(relaxations=rel).match(EMPTY, EMPTY)
        assert out.matched_count == 0
        assert out.request_to_message.shape == (0,)

    def test_single_envelope_batch(self, rel):
        out = MatchingEngine(relaxations=rel).match(ONE, ONE)
        assert out.matched_count == 1

    def test_asymmetric_singletons(self, rel):
        engine = MatchingEngine(relaxations=rel)
        assert engine.match(ONE, EMPTY).matched_count == 0
        assert engine.match(EMPTY, ONE).matched_count == 0
