"""Trace serialization round-trips and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main as cli_main
from repro.traces import generate_trace
from repro.traces.events import SendEvent, Trace
from repro.traces.io import dumps, load_trace, loads, save_trace


class TestRoundTrip:
    @pytest.mark.parametrize("app", ["exmatex_lulesh", "df_minidft",
                                     "cesar_crystalrouter"])
    def test_roundtrip_preserves_everything(self, app):
        trace = generate_trace(app, n_ranks=8, steps=2, seed=3)
        again = loads(dumps(trace))
        assert again.app == trace.app
        assert again.n_ranks == trace.n_ranks
        assert again.meta == trace.meta
        assert len(again) == len(trace)
        for a, b in zip(trace.events, again.events):
            assert type(a) is type(b)
            assert a == b

    def test_roundtrip_through_file(self, tmp_path):
        trace = generate_trace("df_snap", n_ranks=8, steps=1)
        path = save_trace(trace, tmp_path / "t.jsonl")
        again = load_trace(path)
        assert [e.kind for e in again] == [e.kind for e in trace]

    def test_analyses_identical_after_roundtrip(self):
        from repro.traces import analyze, figure2_summary
        trace = generate_trace("df_partisn", n_ranks=8, steps=1)
        again = loads(dumps(trace))
        assert analyze(again) == analyze(trace)
        assert figure2_summary(again) == figure2_summary(trace)


class TestFormatErrors:
    def test_empty(self):
        with pytest.raises(ValueError, match="header"):
            loads("")

    def test_event_before_header(self):
        with pytest.raises(ValueError, match="before header"):
            loads('{"k":"s","t":1,"r":0,"d":1,"g":0}')

    def test_duplicate_header(self):
        h = '{"k":"h","v":1,"app":"x","ranks":2,"meta":{}}'
        with pytest.raises(ValueError, match="duplicate"):
            loads(h + "\n" + h)

    def test_bad_version(self):
        with pytest.raises(ValueError, match="version"):
            loads('{"k":"h","v":99,"app":"x","ranks":2,"meta":{}}')

    def test_unknown_kind(self):
        h = '{"k":"h","v":1,"app":"x","ranks":2,"meta":{}}'
        with pytest.raises(ValueError, match="unknown record"):
            loads(h + '\n{"k":"z"}')

    def test_invalid_json_line(self):
        h = '{"k":"h","v":1,"app":"x","ranks":2,"meta":{}}'
        with pytest.raises(ValueError, match="invalid JSON"):
            loads(h + "\nnot json")

    def test_blank_lines_tolerated(self):
        h = '{"k":"h","v":1,"app":"x","ranks":2,"meta":{}}'
        trace = loads(h + "\n\n\n")
        assert len(trace) == 0

    def test_jsonl_lines_are_json(self):
        trace = Trace(app="x", n_ranks=2,
                      events=[SendEvent(time=1, rank=0, dst=1, tag=0)])
        for line in dumps(trace).strip().splitlines():
            json.loads(line)


class TestCLI:
    def test_apps(self, capsys):
        assert cli_main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "exmatex_lulesh" in out and "df_amg" in out

    def test_analyze_single(self, capsys):
        assert cli_main(["analyze", "df_snap"]) == 0
        assert "df_snap" in capsys.readouterr().out

    def test_trace_and_replay(self, tmp_path, capsys):
        path = str(tmp_path / "x.jsonl")
        assert cli_main(["trace", "exmatex_cmc", path,
                         "--ranks", "8", "--steps", "1"]) == 0
        assert cli_main(["replay", path]) == 0
        assert "exmatex_cmc" in capsys.readouterr().out

    def test_match(self, capsys):
        assert cli_main(["match", "256", "--relaxation",
                         "nowc+noord+pre"]) == 0
        assert "Mmatches/s" in capsys.readouterr().out

    def test_match_bad_relaxation(self, capsys):
        assert cli_main(["match", "64", "--relaxation", "nope"]) == 2
