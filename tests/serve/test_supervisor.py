"""ShardSupervisor: checkpoints, chaos-kill crash recovery with
exactly-once accounting, live migration, and hot-spot rebalancing."""

from __future__ import annotations

import pytest

from repro.serve import (MIGRATING, BatchPolicy, MatchingService,
                         RebalancePolicy, ShardSupervisor, TenantSpec,
                         merge_workloads, run_supervised, workload_from_app)


def _workload(seed: int = 3, session: bool = True):
    parts = [workload_from_app("df_minife", rate_rps=4000.0, n_ranks=8,
                               steps=3, chunk_envelopes=64, seed=seed,
                               session=session),
             workload_from_app("df_amg", rate_rps=4000.0, n_ranks=8,
                               steps=3, chunk_envelopes=64, seed=seed + 1,
                               ordering_required=False, session=session)]
    return merge_workloads("supervised", parts)


def _service(workload, seed: int = 5, n_shards: int = 2):
    # small size watermark: every arrival chunk triggers a synchronous
    # flush, so kill/checkpoint cadences have flushes to count.
    svc = MatchingService(n_shards=n_shards, seed=seed,
                          batching=BatchPolicy(max_envelopes=64,
                                               max_delay_vt=0.001))
    for spec in workload.tenants:
        svc.register(spec)
    return svc


def _busiest_shard(svc, workload) -> int:
    """Shard hosting the tenant with the most arrivals -- the one
    guaranteed to flush often enough for an armed kill to fire."""
    counts: dict[str, int] = {}
    for arrival in workload.arrivals:
        counts[arrival.tenant] = counts.get(arrival.tenant, 0) + 1
    busiest = max(counts, key=lambda name: (counts[name], name))
    return svc._placement[busiest]


def _exactly_once(svc) -> None:
    accepted = {t.seq for t in svc.tickets if t.accepted}
    covered = [s for r in svc.results for s in r.covered_seqs]
    assert len(covered) == len(set(covered)), "a request matched twice"
    assert set(covered) == accepted, "admitted requests lost"


class TestCheckpoints:
    def test_initial_checkpoint_and_cadence(self):
        workload = _workload()
        svc = _service(workload)
        sup = ShardSupervisor(svc, checkpoint_every=2)
        assert sup.checkpoints == 1              # taken at construction
        assert sup.checkpoint_bytes
        for arrival in workload.arrivals:
            sup.submit(arrival.tenant, arrival.messages, arrival.requests,
                       at_vt=arrival.vt)
        sup.drain()
        assert sup.checkpoints > 1
        # journal only holds admissions after the *latest* checkpoint
        assert len(sup.journal) <= len(svc.tickets)

    def test_bad_cadence_rejected(self):
        svc = _service(_workload())
        with pytest.raises(ValueError):
            ShardSupervisor(svc, checkpoint_every=0)


class TestCrashRecovery:
    def test_kill_recover_loses_nothing(self):
        """The acceptance bar: a shard killed mid-flush (after its
        accumulator drained -- the worst case) recovers from checkpoint
        + journal with zero admitted requests lost and none matched
        twice."""
        workload = _workload()
        svc = _service(workload)
        sup = ShardSupervisor(svc, checkpoint_every=2)
        victim = _busiest_shard(svc, workload)
        sup.arm_kill(victim, after_flushes=2)
        run = run_supervised(workload, supervisor=sup)
        assert len(sup.recoveries) == 1
        report = sup.recoveries[0]
        assert report.shard_id == victim
        assert report.tenants                     # something was restored
        assert report.crash_vt >= report.checkpoint_vt
        assert report.wall_seconds > 0.0
        _exactly_once(svc)
        assert run.wall_seconds > 0.0

    def test_recovery_replays_only_the_victims_journal(self):
        """Requests journaled for tenants on *other* shards must not be
        re-admitted into the recovered shard."""
        workload = _workload()
        svc = _service(workload)
        sup = ShardSupervisor(svc, checkpoint_every=100)  # journal grows
        placements = {svc._placement[s.name] for s in workload.tenants}
        victim = _busiest_shard(svc, workload)
        sup.arm_kill(victim, after_flushes=1)
        run_supervised(workload, supervisor=sup)
        assert len(sup.recoveries) == 1
        _exactly_once(svc)
        if len(placements) > 1:
            survivors = [s for s in svc.shards if s.shard_id != victim]
            assert any(s.tenants for s in survivors)

    def test_arm_kill_validates(self):
        sup = ShardSupervisor(_service(_workload()))
        with pytest.raises(ValueError):
            sup.arm_kill(0, after_flushes=0)


class TestMigration:
    def test_migration_under_load_never_drops(self):
        """During the gate window every submission for the moving tenant
        gets a deterministic ``migrating`` ticket whose hint *is* the
        cutover time -- never an ``overloaded`` drop -- and after the
        cutover the tenant serves from the destination shard."""
        workload = _workload()
        svc = _service(workload)
        sup = ShardSupervisor(svc, checkpoint_every=4)
        mover = workload.tenants[0].name
        src = svc._placement[mover]
        dst = (src + 1) % len(svc.shards)
        trigger = len(workload.arrivals) // 3
        plan = None
        deferred = []
        for i, arrival in enumerate(workload.arrivals):
            if i == trigger:
                plan = sup.begin_migration(mover, dst)
            ticket = sup.submit(arrival.tenant, arrival.messages,
                                arrival.requests, at_vt=arrival.vt)
            if ticket.status == MIGRATING:
                assert arrival.tenant == mover
                assert ticket.retry_after_vt == plan.cutover_vt
                deferred.append(arrival)
            else:
                assert ticket.status != "overloaded"
        assert plan is not None
        sup.advance_to(plan.cutover_vt + 1.0)     # fire the cutover
        assert plan.completed_vt is not None
        assert svc._placement[mover] == dst
        assert mover in svc.shards[dst].tenants
        assert mover not in svc.shards[src].tenants
        for arrival in deferred:                  # retries now land
            assert sup.submit(arrival.tenant, arrival.messages,
                              arrival.requests).accepted
        sup.drain()
        _exactly_once(svc)
        assert svc.shed_counts["overloaded"] == 0
        assert svc.shed_counts["migrating"] == len(deferred)
        assert sup.migrations == [plan]

    def test_migration_preserves_session_carryover(self):
        """A session tenant's carried UMQ/PRQ moves with it: envelopes
        unmatched before the migration still match after the cutover."""
        from repro.core.envelope import EnvelopeBatch
        from repro.serve import BatchPolicy

        svc = MatchingService(
            n_shards=2, batching=BatchPolicy(max_envelopes=4,
                                             max_delay_vt=1.0))
        svc.register(TenantSpec(name="t", autotune=False, session=True))
        sup = ShardSupervisor(svc)
        src = svc._placement["t"]
        msgs = EnvelopeBatch(src=[0, 1, 2, 3], tag=[7, 7, 7, 7])
        sup.submit("t", msgs, EnvelopeBatch.empty())   # flush: 4 unmatched
        assert svc.shards[src].tenants["t"].session.depth == 4
        plan = sup.begin_migration("t", (src + 1) % 2)
        sup.advance_to(plan.cutover_vt + 1.0)
        dst_ts = svc.shards[plan.to_shard].tenants["t"]
        assert dst_ts.session.depth == 4               # moved with it
        sup.submit("t", EnvelopeBatch.empty(), msgs)   # matching requests
        sup.drain()
        assert svc.results[-1].outcome.matched_count == 4

    def test_begin_migration_validates(self):
        svc = _service(_workload())
        sup = ShardSupervisor(svc)
        mover = next(iter(svc._placement))
        here = svc._placement[mover]
        with pytest.raises(ValueError):
            sup.begin_migration(mover, here)
        with pytest.raises(ValueError):
            sup.begin_migration(mover, 99)


class TestRebalance:
    def test_hot_shard_sheds_its_hottest_tenant(self):
        """Two tenants forced onto one shard make it carry 100% of the
        windowed volume; the rebalancer must move one to the idle
        shard."""
        workload = _workload()
        svc = _service(workload)
        # co-locate every tenant on shard 0 to manufacture a hot spot
        for spec in workload.tenants:
            src = svc._placement[spec.name]
            if src != 0:
                ts = svc.shards[src].tenants.pop(spec.name)
                svc.shards[0].tenants[spec.name] = ts
                svc._placement[spec.name] = 0
        sup = ShardSupervisor(
            svc, checkpoint_every=4,
            rebalance=RebalancePolicy(hot_fraction=0.5, min_flushes=2,
                                      cooldown_flushes=2))
        delay = svc.shards[0].batching.max_delay_vt
        for arrival in workload.arrivals:
            sup.submit(arrival.tenant, arrival.messages, arrival.requests,
                       at_vt=arrival.vt)
        # ticks: the first triggers the rebalance (begin_migration), a
        # later one fires the scheduled cutover
        for _ in range(4):
            sup.advance_to(svc.now + 2.0 * delay)
        sup.drain()
        assert sup.migrations, "hot spot was never rebalanced"
        assert len(set(svc._placement.values())) > 1
        _exactly_once(svc)

    def test_policy_validates(self):
        with pytest.raises(ValueError):
            RebalancePolicy(hot_fraction=1.5)

    def test_single_tenant_shard_is_left_alone(self):
        workload = workload_from_app("df_minife", rate_rps=4000.0,
                                     n_ranks=8, steps=2,
                                     chunk_envelopes=64, seed=3)
        svc = _service(workload)
        sup = ShardSupervisor(
            svc, rebalance=RebalancePolicy(hot_fraction=0.5, min_flushes=1,
                                           cooldown_flushes=1))
        run_supervised(workload, supervisor=sup)
        assert sup.migrations == []   # moving the hotspot helps nobody


class TestRunSupervised:
    def test_transport_drop_uses_a_separate_rng(self):
        """Dropping arrivals must not perturb the service's own RNG:
        the surviving arrivals' outcomes replay identically."""
        workload = _workload()

        def one(drop):
            svc = _service(workload)
            sup = ShardSupervisor(svc, checkpoint_every=4)
            run = run_supervised(workload, supervisor=sup,
                                 drop_fraction=drop, drop_seed=13)
            _exactly_once(svc)
            return run
        lossless = one(0.0)
        lossy_a, lossy_b = one(0.1), one(0.1)
        assert lossless.transport_dropped == 0
        assert lossy_a.transport_dropped > 0
        fp = lambda r: [(t.status, t.seq, t.retry_after_vt)  # noqa: E731
                        for t in r.supervisor.svc.tickets]
        assert fp(lossy_a) == fp(lossy_b)

    def test_rejects_bad_drop_fraction(self):
        with pytest.raises(ValueError):
            run_supervised(_workload(), drop_fraction=1.0)
