"""Benchmark harness utilities: workloads, sweeps, reporting, anchors."""

from .calibration import ANCHORS, Anchor, anchor, recalibrate
from .harness import (SweepPoint, matching_workload, ordered_workload,
                      partial_workload, reversed_workload, sweep)
from .reporting import (Table, ascii_histogram, format_rate, results_dir,
                        write_result)

__all__ = [
    "ANCHORS", "Anchor", "anchor", "recalibrate",
    "SweepPoint", "matching_workload", "ordered_workload",
    "partial_workload", "reversed_workload", "sweep",
    "Table", "ascii_histogram", "format_rate", "results_dir", "write_result",
]
