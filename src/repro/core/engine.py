"""Matching engine facade: relaxation set -> algorithm/data structure.

:class:`MatchingEngine` is the public entry point of the core library.
Given a :class:`~repro.core.relaxations.RelaxationSet` it selects the
matcher the paper prescribes (Table II):

======================  =========  ==============================
relaxations             structure  matcher
======================  =========  ==============================
wildcards + ordering    matrix     :class:`MatrixMatcher` (1 queue)
no wildcards, ordering  matrix     :class:`PartitionedMatcher`
no ordering             hash       :class:`HashMatcher`
======================  =========  ==============================

with the compaction pass enabled exactly when unexpected messages are
allowed.  Optionally every outcome is cross-checked against the MPI
reference oracle (ordered configurations) or the relaxed validity checker
(unordered).
"""

from __future__ import annotations

from ..simt.gpu import GPUSpec, PASCAL_GTX1080
from .envelope import EnvelopeBatch
from .hash_matching import HashMatcher, HashTableConfig
from .list_matching import ListMatcher
from .matrix_matching import DEFAULT_WINDOW, MatrixMatcher
from .partitioned import PartitionedMatcher
from .relaxations import RelaxationSet
from .result import MatchOutcome
from .verify import check_mpi_ordering, check_relaxed, reference_match

__all__ = ["MatchingEngine"]


class MatchingEngine:
    """Select and drive the right matcher for a relaxation set.

    Parameters
    ----------
    gpu:
        Simulated device (default Pascal GTX 1080).
    relaxations:
        Guarantee set; defaults to fully MPI-compliant matching.
    n_queues:
        Partition count when the source wildcard is prohibited.
    n_ctas:
        CTA count for the hash matcher.
    window:
        Matrix scan window.
    hash_config:
        Two-level table configuration for the hash matcher.
    verify:
        Cross-check every outcome against the reference semantics (slow;
        intended for tests and debugging).

    Examples
    --------
    >>> from repro import GPU, MatchingEngine, RelaxationSet, EnvelopeBatch
    >>> eng = MatchingEngine(gpu=GPU.pascal_gtx1080(),
    ...                      relaxations=RelaxationSet(wildcards=False,
    ...                                                ordering=False,
    ...                                                unexpected=False))
    >>> msgs = EnvelopeBatch(src=[0, 1], tag=[7, 7])
    >>> reqs = EnvelopeBatch(src=[1, 0], tag=[7, 7])
    >>> eng.match(msgs, reqs).matched_count
    2
    """

    def __init__(self, gpu: GPUSpec = PASCAL_GTX1080,
                 relaxations: RelaxationSet | None = None,
                 n_queues: int = 4, n_ctas: int = 1,
                 window: int = DEFAULT_WINDOW,
                 hash_config: HashTableConfig | None = None,
                 verify: bool = False) -> None:
        self.gpu = gpu
        self.relaxations = (relaxations if relaxations is not None
                            else RelaxationSet())
        self.verify = verify
        self._matcher = self._build_matcher(n_queues, n_ctas, window,
                                            hash_config)

    def _build_matcher(self, n_queues: int, n_ctas: int, window: int,
                       hash_config: HashTableConfig | None):
        rel = self.relaxations
        compaction = rel.needs_compaction
        if not rel.ordering:
            return HashMatcher(spec=self.gpu, n_ctas=n_ctas,
                               config=hash_config)
        if rel.partitionable:
            return PartitionedMatcher(spec=self.gpu, n_queues=n_queues,
                                      window=window, compaction=compaction)
        return MatrixMatcher(spec=self.gpu, window=window,
                             compaction=compaction)

    @property
    def matcher(self):
        """The concrete matcher chosen for the relaxation set."""
        return self._matcher

    @property
    def data_structure(self) -> str:
        """Table II's data-structure column for this engine."""
        return self.relaxations.data_structure

    def match(self, messages: EnvelopeBatch,
              requests: EnvelopeBatch) -> MatchOutcome:
        """Validate the workload, match, and (optionally) verify semantics."""
        self.relaxations.validate_requests(requests)
        outcome = self._matcher.match(messages, requests)
        if not self.relaxations.unexpected:
            # All receives must have been pre-posted: any message left
            # unmatched after the pass arrived without a matching posted
            # receive, regardless of how many requests remain open.
            unexpected = outcome.n_messages - outcome.matched_count
            self.relaxations.validate_unexpected(unexpected)
        if self.verify:
            if self.relaxations.ordering:
                check_mpi_ordering(messages, requests, outcome)
            else:
                check_relaxed(messages, requests, outcome)
        return outcome

    def reference(self, messages: EnvelopeBatch,
                  requests: EnvelopeBatch) -> MatchOutcome:
        """The sequential MPI oracle's assignment (no device timing)."""
        return reference_match(messages, requests)

    def cpu_baseline(self, messages: EnvelopeBatch,
                     requests: EnvelopeBatch) -> MatchOutcome:
        """The CPU list-based baseline's assignment and timing."""
        return ListMatcher().match(messages, requests)
