"""EXT6: timing-model validation -- analytic vs cycle-level scheduling.

The analytic TimingModel prices every benchmark in this repository; this
bench keeps it honest by running representative instruction mixes (the
matrix scan, the sequential reduce, the hash probe loop) through the
discrete-event SM scheduler and reporting the ratio of analytic to
scheduled cycles per device generation.
"""

from __future__ import annotations

from repro.bench import Table, write_result
from repro.simt.gpu import GPU
from repro.simt.sm import SMScheduler, streams_from_mix
from repro.simt.timing import CostLedger, TimingModel

#: Instruction mixes shaped like the matchers' phases (per warp).
MIXES = {
    "scan-like (32w)": (32, [("smem_load", 64), ("alu", 64),
                             ("ballot", 64), ("smem_store", 64)]),
    "reduce-like (1w)": (1, [("smem_load", 256), ("ballot", 256),
                             ("alu", 1024), ("branch", 256)]),
    "hash-probe (32w)": (32, [("alu", 40), ("gmem_load", 4),
                              ("atomic", 2)]),
    "compaction (16w)": (16, [("alu", 80), ("shfl", 30),
                              ("gmem_load", 64), ("gmem_store", 4)]),
}


def validation_ratios():
    """{(mix, generation): analytic/scheduled cycle ratio}."""
    out = {}
    for label, (warps, mix) in MIXES.items():
        for spec in GPU.all_generations():
            scheduled = SMScheduler(spec).run(streams_from_mix(warps, mix))
            led = CostLedger()
            phase = led.phase("p", active_warps=warps)
            for kind, count in mix:
                phase.add(kind, count * warps)
            analytic = TimingModel(spec).phase_cycles(phase)
            out[(label, spec.generation)] = analytic / scheduled.cycles
    return out


def test_report_ext6_model_validation():
    ratios = validation_ratios()
    table = Table(
        title="EXT6 -- analytic timing model vs cycle-level scheduler "
              "(analytic/scheduled cycle ratio)",
        columns=["instruction mix", "kepler", "maxwell", "pascal"])
    for label in MIXES:
        table.add(label, *(f"{ratios[(label, g)]:.2f}"
                           for g in ("kepler", "maxwell", "pascal")))
    table.note("ratios near 1.0 mean the closed form tracks the "
               "discrete-event model; calibration multipliers absorb the "
               "residual when anchoring to hardware")
    write_result("ext6_model_validation", table.show())
    for key, ratio in ratios.items():
        assert 0.4 < ratio < 2.5, (key, ratio)


def test_perf_scheduler(benchmark):
    spec = GPU.pascal_gtx1080()
    streams = streams_from_mix(32, [("alu", 50), ("gmem_load", 5)])
    sched = SMScheduler(spec)

    def run():
        # fresh copies: the scheduler mutates stream positions
        return sched.run(streams_from_mix(32, [("alu", 50),
                                               ("gmem_load", 5)]))

    result = benchmark(run)
    assert result.issued == 32 * 55


if __name__ == "__main__":
    test_report_ext6_model_validation()
