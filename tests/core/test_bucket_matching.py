"""Hashed-bucket CPU matcher: oracle equivalence in both directions,
marker semantics, and the related-work speedup claim."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucket_matching import BucketMatcher, arrivals_oracle
from repro.core.envelope import ANY_SOURCE, ANY_TAG, EnvelopeBatch
from repro.core.list_matching import ListMatcher
from repro.core.verify import reference_match
from tests.conftest import permuted_pair, with_wildcards
from tests.core.test_matchers import workloads


class TestRequestDirection:
    @given(workloads())
    @settings(max_examples=50, deadline=None)
    def test_equals_oracle(self, wl):
        msgs, reqs = wl
        out = BucketMatcher(n_buckets=4).match(msgs, reqs)
        ref = reference_match(msgs, reqs)
        assert np.array_equal(out.request_to_message, ref.request_to_message)

    @pytest.mark.parametrize("n_buckets", [1, 3, 16, 64])
    def test_bucket_count_never_changes_assignment(self, n_buckets, rng):
        msgs, reqs = permuted_pair(rng, 300, n_ranks=16, n_tags=8)
        reqs = with_wildcards(rng, reqs)
        out = BucketMatcher(n_buckets=n_buckets).match(msgs, reqs)
        ref = reference_match(msgs, reqs)
        assert np.array_equal(out.request_to_message, ref.request_to_message)

    def test_wildcard_takes_global_earliest(self):
        """Cross-bucket ordering: the earliest message wins even when a
        later message sits at the head of another bucket."""
        msgs = EnvelopeBatch(src=[9, 2], tag=[4, 4])
        reqs = EnvelopeBatch(src=[ANY_SOURCE], tag=[4])
        out = BucketMatcher(n_buckets=8).match(msgs, reqs)
        assert out.request_to_message[0] == 0

    def test_concrete_search_is_shorter_than_list(self, rng):
        """The point of bucketing: mean search length collapses."""
        n = 1024
        msgs = EnvelopeBatch(src=list(range(n)), tag=[0] * n)
        reqs = msgs.take(rng.permutation(n))
        lst = ListMatcher().match(msgs, reqs)
        bkt = BucketMatcher(n_buckets=64).match(msgs, reqs)
        assert bkt.meta["mean_search_length"] < \
            lst.meta["mean_search_length"] / 10


class TestArrivalDirection:
    @given(workloads())
    @settings(max_examples=50, deadline=None)
    def test_equals_arrival_oracle(self, wl):
        msgs, reqs = wl
        out = BucketMatcher(n_buckets=4).match_arrivals(msgs, reqs)
        assert np.array_equal(out.request_to_message,
                              arrivals_oracle(msgs, reqs))

    def test_marker_preserves_posted_order(self):
        """A wildcard posted *before* a concrete request must win the
        message, even though the concrete request sits in the message's
        bucket -- only the marker makes this visible to a bucket walk."""
        reqs = EnvelopeBatch(src=[ANY_SOURCE, 3], tag=[7, 7])
        msgs = EnvelopeBatch(src=[3], tag=[7])
        out = BucketMatcher(n_buckets=8).match_arrivals(msgs, reqs)
        assert out.request_to_message[0] == 0   # wildcard got it
        assert out.request_to_message[1] == -1

    def test_marker_skipped_when_wildcard_does_not_accept(self):
        """A partially-wildcarded request (concrete tag) must NOT steal a
        message with a different tag, even though its marker precedes the
        concrete request in the bucket."""
        reqs = EnvelopeBatch(src=[ANY_SOURCE, 3], tag=[5, 7])
        msgs = EnvelopeBatch(src=[3], tag=[7])
        out = BucketMatcher(n_buckets=8).match_arrivals(msgs, reqs)
        assert out.request_to_message[1] == 0   # tag-5 wildcard skipped

    def test_wildcard_consumed_once_across_buckets(self):
        """Once any marker's wildcard matches, every other marker of that
        wildcard dies: two messages in different buckets cannot both
        match one wildcard receive."""
        reqs = EnvelopeBatch(src=[ANY_SOURCE, ANY_SOURCE], tag=[ANY_TAG,
                                                                ANY_TAG])
        msgs = EnvelopeBatch(src=[1, 2], tag=[3, 4])
        out = BucketMatcher(n_buckets=8).match_arrivals(msgs, reqs)
        assert sorted(out.request_to_message.tolist()) == [0, 1]

    def test_preposted_concrete_requests_one_bucket_walk(self, rng):
        n = 512
        reqs = EnvelopeBatch(src=list(range(n)), tag=[0] * n)
        msgs = reqs.take(rng.permutation(n))
        out = BucketMatcher(n_buckets=64).match_arrivals(msgs, reqs)
        assert out.matched_count == n
        assert out.meta["mean_search_length"] < n / 32


class TestRelatedWorkClaim:
    def test_long_queue_speedup_over_list(self, rng):
        """Reproduce the cited result's direction: hashed buckets beat
        list matching by multiples on long diverse queues (the paper of
        record reports 3.5x end-to-end for FDS)."""
        n = 2048
        msgs = EnvelopeBatch(src=np.arange(n) % 256, tag=np.arange(n) // 256)
        reqs = msgs.take(rng.permutation(n))
        lst = ListMatcher().match(msgs, reqs)
        bkt = BucketMatcher(n_buckets=256).match(msgs, reqs)
        assert np.array_equal(lst.request_to_message,
                              bkt.request_to_message)
        speedup = bkt.matches_per_second() / lst.matches_per_second()
        assert speedup > 3.0

    def test_wildcard_heavy_workload_erases_the_advantage(self, rng):
        """All-wildcard receives force full scans -- bucketing cannot
        help (and the marker machinery must still be correct)."""
        n = 256
        msgs = EnvelopeBatch(src=np.arange(n), tag=np.zeros(n, dtype=int))
        reqs = EnvelopeBatch(src=[ANY_SOURCE] * n, tag=[ANY_TAG] * n)
        lst = ListMatcher().match(msgs, reqs)
        bkt = BucketMatcher(n_buckets=64).match(msgs, reqs)
        assert np.array_equal(lst.request_to_message,
                              bkt.request_to_message)
        assert bkt.matches_per_second() < 2 * lst.matches_per_second()

    def test_validation(self):
        with pytest.raises(ValueError):
            BucketMatcher(n_buckets=0)
        with pytest.raises(ValueError):
            BucketMatcher(hash_name="sha1")
