"""Rank-partitioned multi-queue matching (Section VI-A relaxation).

Prohibiting ``MPI_ANY_SOURCE`` removes the only cross-rank matching
dependency, so the rank space can be *statically partitioned* into Q
independent queues (rank mod Q here).  Every queue is matched by the
matrix algorithm with its own group of warps; queues run concurrently.

Paper observations this module reproduces:

* near-linear scaling up to ~4 queues, slightly sub-linear beyond because
  (a) smaller queues give the scan/reduce pipeline less work to overlap
  and (b) the pipeline barriers are CTA-wide, synchronizing *all* warps,
  not just the queue's own;
* total queue lengths beyond 1024 x resident-CTA capacity force extra
  CTAs, which serialize (the occupancy calculator allows two of these
  CTAs per SM), reducing efficiency;
* feasibility: the number of peers a rank talks to bounds useful Q
  (10-30 for most proxy apps), and skewed rank distributions unbalance
  the queues (CESAR Nekbone, AMR Boxlib).

Ordering correctness: messages of one (source, communicator) always land
in the same queue, and within a queue the matrix matcher preserves queue
order, so MPI's non-overtaking guarantee still holds — only
``MPI_ANY_SOURCE`` is lost.  Tag wildcards remain legal.
"""

from __future__ import annotations

import math

import numpy as np

from ..simt.cta import MAX_WARPS_PER_CTA
from ..simt.gpu import GPUSpec, PASCAL_GTX1080
from ..simt.occupancy import KernelResources, occupancy
from ..simt.timing import CostLedger, SYNC_OVERHEAD_CYCLES, TimingModel
from ..simt.warp import WARP_SIZE
from .envelope import ANY_SOURCE, EnvelopeBatch
from .matrix_matching import DEFAULT_WINDOW, MatrixMatcher
from .result import NO_MATCH, MatchOutcome

__all__ = ["PartitionedMatcher", "COORDINATION_OVERHEAD_CYCLES"]

#: Fixed multi-queue coordination cost per matching pass (kernel launch,
#: queue-descriptor setup, head/tail pointer exchange).  Fitted so the
#: many-small-queue limit bends to the paper's ~60 Mmatches/s partitioned
#: ceiling on Pascal (abstract, Table II) while <=4 queues stay "almost
#: linear" (Section VI-A).
COORDINATION_OVERHEAD_CYCLES = 10000.0


class PartitionedMatcher:
    """Matrix matching over Q statically rank-partitioned queues.

    Parameters
    ----------
    spec:
        Simulated device.
    n_queues:
        Number of partitions (Figure 5 sweeps 1..32).
    window:
        Scan window forwarded to the per-queue matrix matcher.
    compaction:
        Per-queue compaction pass (skippable under "no unexpected
        messages").
    warp_size:
        Lanes per (sub-)warp, forwarded to the per-queue matrix matchers
        and used for thread provisioning.  The paper's Section VII-C
        variable-warp-size feature: with 32-lane warps a queue of 8
        entries still occupies a full warp's threads; narrow warps pack
        several small queues into the same physical resources, lowering
        the CTA count of many-small-queue launches.
    sm_count:
        SMs devoted to matching (default 1, the paper's methodology).
        "If multiple SMs were used, the performance would be increasing
        linearly since all CTAs would be running in parallel, however,
        less resources would be available to execute the application"
        (Section VI-A) -- EXT8 measures exactly that trade.
    partition_key:
        ``"src"`` (the paper's choice) or ``"tag"``.  Tag partitioning is
        the alternative the paper dismisses: "prohibiting tag wildcards
        would allow to further partition among tags, but tags are usually
        not uniformly distributed, resulting in an imbalanced utilization
        of queues" (Section VI).  It prohibits ``MPI_ANY_TAG`` instead of
        ``MPI_ANY_SOURCE`` and is exactly as order-correct (same-tag
        same-source messages share a queue); the EXT3 bench shows the
        imbalance penalty on realistic tag distributions.
    """

    name = "partitioned"

    def __init__(self, spec: GPUSpec = PASCAL_GTX1080, n_queues: int = 4,
                 window: int = DEFAULT_WINDOW,
                 compaction: bool = False,
                 warp_size: int = WARP_SIZE,
                 partition_key: str = "src",
                 sm_count: int = 1,
                 reduce_impl: str = "batched",
                 obs=None, sanitize=None) -> None:
        if n_queues < 1:
            raise ValueError("n_queues must be positive")
        if not 1 <= warp_size <= WARP_SIZE:
            raise ValueError(f"warp_size must be in [1, {WARP_SIZE}]")
        if partition_key not in ("src", "tag"):
            raise ValueError("partition_key must be 'src' or 'tag'")
        if not 1 <= sm_count <= spec.sm_count:
            raise ValueError(f"sm_count must be in [1, {spec.sm_count}]")
        if reduce_impl not in ("batched", "scalar"):
            raise ValueError("reduce_impl must be 'batched' or 'scalar'")
        self.spec = spec
        self.n_queues = n_queues
        self.window = window
        self.compaction = compaction
        self.warp_size = warp_size
        self.partition_key = partition_key
        self.sm_count = sm_count
        self.reduce_impl = reduce_impl
        self._obs = obs
        self._san = sanitize if sanitize is not None else spec.sanitize

    # -- partitioning -------------------------------------------------------------

    def queue_of(self, values: np.ndarray) -> np.ndarray:
        """Static queue assignment: partition-key value mod Q."""
        return np.asarray(values, dtype=np.int64) % self.n_queues

    def _key_values(self, batch: EnvelopeBatch) -> np.ndarray:
        return batch.src if self.partition_key == "src" else batch.tag

    # -- matching ------------------------------------------------------------------

    def match(self, messages: EnvelopeBatch,
              requests: EnvelopeBatch) -> MatchOutcome:
        """Partition, match every queue, and price the concurrent execution."""
        messages.assert_concrete("message queue")
        if self.partition_key == "src" and (requests.src == ANY_SOURCE).any():
            raise ValueError(
                "src-partitioned matching requires the no-source-wildcard "
                "relaxation; requests use MPI_ANY_SOURCE")
        if self.partition_key == "tag" and (requests.tag == -1).any():
            raise ValueError(
                "tag-partitioned matching requires the no-tag-wildcard "
                "relaxation; requests use MPI_ANY_TAG")
        n_msg, n_req = len(messages), len(requests)
        out = np.full(n_req, NO_MATCH, dtype=np.int64)
        if n_msg == 0 or n_req == 0:
            empty = CostLedger()
            timing = TimingModel(self.spec).evaluate(empty)
            return self._outcome(out, n_msg, n_req, timing.seconds,
                                 timing.cycles, 0, {})

        msg_q = self.queue_of(self._key_values(messages))
        req_q = self.queue_of(self._key_values(requests))
        queue_cycles: list[float] = []
        queue_meta: dict[str, dict] = {}
        iterations = 0
        for q in range(self.n_queues):
            m_idx = np.nonzero(msg_q == q)[0]
            r_idx = np.nonzero(req_q == q)[0]
            if m_idx.size == 0 and r_idx.size == 0:
                continue
            if self._obs is not None:
                self._obs.observe("partitioned.queue_depth",
                                  float(m_idx.size))
            warps_q = min(MAX_WARPS_PER_CTA,
                          max(1, math.ceil(m_idx.size / self.warp_size)))
            ledger = CostLedger()
            # Compaction is charged once at full CTA width in _combine, not
            # per queue (a 1-warp queue compacting alone would be absurdly
            # latency-bound).
            matcher = MatrixMatcher(
                spec=self.spec, warps_per_cta=warps_q,
                window=self.window, compaction=False,
                warp_size=self.warp_size, reduce_impl=self.reduce_impl,
                sanitize=self._san)
            local, iters = matcher.execute(messages.take(m_idx),
                                           requests.take(r_idx), ledger)
            iterations = max(iterations, iters)
            hit = local != NO_MATCH
            out[r_idx[hit]] = m_idx[local[hit]]
            cycles = self._priced_queue_cycles(ledger, warps_q)
            queue_cycles.append(cycles)
            queue_meta[f"queue{q}"] = {
                "messages": int(m_idx.size), "requests": int(r_idx.size),
                "warps": warps_q, "cycles": cycles}
        provisioned = sum(meta["warps"] * self.warp_size
                          for meta in queue_meta.values())
        seconds, cycles, launch_meta = self._combine(queue_cycles,
                                                     provisioned, n_msg)
        queue_meta.update(launch_meta)
        return self._outcome(out, n_msg, n_req, seconds, cycles,
                             max(1, iterations), queue_meta)

    # -- pricing -------------------------------------------------------------------

    def _priced_queue_cycles(self, ledger: CostLedger, warps_q: int) -> float:
        """Cycles for one queue, with barriers widened to CTA scope.

        The pipeline barriers synchronize every warp of the CTA the queue
        is packed into ("the synchronization required for pipelining
        applies to all warps"), so sync costs scale by the ratio of CTA
        warps to queue warps.
        """
        cta_warps = min(MAX_WARPS_PER_CTA,
                        max(warps_q, self._warps_per_cta_estimate()))
        widen = cta_warps / max(1, warps_q)
        for phase in ledger.phases:
            if "sync" in phase.counts:
                phase.counts["sync"] *= widen
        return TimingModel(self.spec).evaluate(ledger).cycles

    def _warps_per_cta_estimate(self) -> int:
        """Warps sharing a CTA when several small queues are packed together."""
        return MAX_WARPS_PER_CTA

    def _combine(self, queue_cycles: list[float], provisioned_threads: int,
                 total_messages: int) -> tuple[float, float, dict]:
        """Wall time of the concurrent multi-queue launch.

        The launch provisions one thread per message, rounded up to warp
        granularity per queue ("one CTA cannot provide enough threads
        unless one thread matches more than one message"), i.e.
        ceil(threads/1024) CTAs -- the numbers annotated in Figure 5.
        Narrow warps (the variable-warp-size feature) shrink the rounding
        waste of small queues and thus the CTA count.  Resident CTAs
        (two, by the occupancy calculator) run concurrently; extra CTAs
        serialize into waves.  Within a wave the slowest queue dominates,
        and a fixed coordination overhead is paid once per pass.
        """
        if not queue_cycles:
            return 0.0, 0.0, {"ctas": 0, "waves": 0}
        n_ctas = max(1, math.ceil(provisioned_threads
                                  / (MAX_WARPS_PER_CTA * WARP_SIZE)))
        res = KernelResources(threads_per_cta=1024,
                              shared_mem_per_cta=MAX_WARPS_PER_CTA
                              * self.window * 4 * 2,
                              regs_per_thread=32)
        resident = occupancy(self.spec, res).max_resident_ctas \
            * self.sm_count
        waves = math.ceil(n_ctas / resident)
        wall = max(queue_cycles) * waves
        # Cross-queue pipeline interference: each extra concurrent queue
        # adds barrier traffic for everyone.
        wall += SYNC_OVERHEAD_CYCLES * (len(queue_cycles) - 1)
        wall += COORDINATION_OVERHEAD_CYCLES
        if self.compaction:
            # All queue regions compact concurrently at full CTA width; the
            # transaction-level compaction model needs no calibration
            # anchor of its own ("compaction" family scale is 1.0).
            from ..simt.timing import CostLedger as _Ledger
            from .compaction import charge_compaction
            led = _Ledger()
            charge_compaction(led, 2 * total_messages,
                              max_warps=MAX_WARPS_PER_CTA)
            wall += TimingModel(self.spec,
                                family="compaction").evaluate(led).cycles
        return wall / self.spec.clock_hz, wall, {
            "ctas": n_ctas, "waves": waves, "resident_ctas": resident,
            "sm_count": self.sm_count,
            "n_active_queues": len(queue_cycles)}

    def _outcome(self, out: np.ndarray, n_msg: int, n_req: int,
                 seconds: float, cycles: float, iterations: int,
                 meta: dict) -> MatchOutcome:
        meta = dict(meta)
        meta.update({"device": self.spec.name, "n_queues": self.n_queues,
                     "compaction": self.compaction,
                     "partition_key": self.partition_key})
        if self._obs is not None:
            matched = int(np.count_nonzero(out != NO_MATCH))
            self._obs.count("partitioned.matches", float(matched))
            self._obs.span("partitioned.match", seconds, n_messages=n_msg,
                           n_requests=n_req, matched=matched,
                           n_queues=self.n_queues)
        return MatchOutcome(request_to_message=out, n_messages=n_msg,
                            n_requests=n_req, seconds=seconds, cycles=cycles,
                            iterations=iterations, meta=meta)
