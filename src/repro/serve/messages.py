"""Serve-layer protocol types: tenants, requests, tickets, flush results.

The serving subsystem speaks a small request/response protocol on top of
the matching core.  A client belongs to a *tenant* (an isolated matching
domain with its own engine, queues, and relaxation state) and submits
:class:`ServeRequest`\\ s carrying message and receive-request envelopes.
Every submission is answered immediately with a :class:`Ticket`:

* ``accepted`` -- the envelopes joined the tenant's batch accumulator and
  will be matched at the next flush;
* ``retryable`` -- the shard's inbox is above its soft watermark; the
  request was **not** admitted, and the ticket carries a deterministic
  ``retry_after_vt`` hint (virtual seconds);
* ``overloaded`` -- the inbox is full; the request was shed outright.

Structured shedding instead of unbounded queue growth is the serve-layer
analogue of the transport's credit backpressure (PR 2): the system
degrades by answering honestly, never by falling over.

Matching work completes asynchronously at flush time; each flush yields
one :class:`FlushResult` tying the :class:`~repro.core.result.MatchOutcome`
back to the covered request sequence numbers with per-request virtual
latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.envelope import EnvelopeBatch
from ..core.relaxations import RelaxationSet
from ..core.result import MatchOutcome

__all__ = ["ACCEPTED", "RETRYABLE", "OVERLOADED", "MIGRATING", "TenantSpec",
           "ServeRequest", "Ticket", "FlushResult", "ShardCrash"]

#: Ticket status: the request was admitted to the tenant's accumulator.
ACCEPTED = "accepted"

#: Ticket status: shed above the soft watermark; safe to retry at
#: ``retry_after_vt``.
RETRYABLE = "retryable"

#: Ticket status: shed at full capacity; the client must back off and
#: re-issue (the serve layer keeps no record of the envelopes).
OVERLOADED = "overloaded"

#: Ticket status: the tenant is mid-migration between shards; the
#: request was not admitted and should be re-issued at ``retry_after_vt``
#: (the deterministic cutover time).  Unlike ``overloaded``, nothing is
#: dropped for capacity reasons -- migration sheds only with a hint.
MIGRATING = "migrating"


class ShardCrash(RuntimeError):
    """Chaos-injected shard failure (see ``repro.serve.supervisor``).

    Raised from inside a flush *after* the accumulator has drained --
    the worst moment: without the supervisor's admission journal, every
    envelope of the in-flight batch would be lost.  Carries where and
    when the crash happened so the supervisor can recover.
    """

    def __init__(self, shard_id: int, tenant: str, vt: float) -> None:
        super().__init__(f"shard {shard_id} crashed mid-flush "
                         f"(tenant {tenant!r}, vt={vt})")
        self.shard_id = shard_id
        self.tenant = tenant
        self.vt = vt


@dataclass(frozen=True)
class TenantSpec:
    """Declared identity and matching contract of one tenant.

    Parameters
    ----------
    name:
        Unique tenant identifier (also the obs label).
    relaxations:
        Pinned relaxation set.  ``None`` (default) starts at full MPI
        semantics (matrix path) and lets the autotuner walk the Table II
        lattice as the observed workload permits.
    ordering_required:
        Semantic contract: does the tenant depend on MPI non-overtaking
        order?  Ordering need is *not* observable from envelopes alone,
        so the hash design point is only reachable when the tenant
        declares it does not need ordering.
    autotune:
        Enable the profiler-driven lattice walk.  Pinned-relaxation
        tenants (``relaxations`` not ``None``) are never retuned.
    n_queues, n_ctas:
        Engine build knobs, forwarded to
        :class:`~repro.core.engine.MatchingEngine`.
    session:
        Persistent-UMQ mode: envelopes left unmatched by a flush carry
        over into the tenant's next flush as packed column blocks
        instead of being discarded (see ``repro.serve.state.SessionState``).
        Off by default -- stateless flushes are the paper's batch-mode
        matching.
    session_max_carryover:
        Per-tenant cap on carried-over envelopes (UMQ + PRQ combined);
        beyond it the *oldest* carried envelopes are shed.
    session_max_age_flushes:
        Age bound: a carried envelope that stays unmatched for this many
        subsequent flushes is shed (age-based shedding keeps a dead
        tuple from pinning session memory forever).
    partitioned:
        Declares a match-once/fire-many stream (MPI-4 partitioned
        channels): the tenant's envelopes are channel *bindings*, each
        amortized over many partition re-fires that never re-enter
        matching.  The autotuner treats this declaration as a cost-model
        override -- the per-match cost is paid once per channel epoch,
        so chasing the hash path's per-match speedup buys little and
        the re-fire streams' tiny tuple cardinality would otherwise
        oscillate the lattice walk (see
        :meth:`~repro.serve.autotuner.Autotuner.target_rank`).
    span:
        Number of shards the tenant spans.  ``1`` (default) is the
        classic single-shard tenant.  ``span=N`` registers N sub-tenants
        named ``name#0 .. name#N-1``, each placed independently by the
        CRC32 placement rule, and the cross-shard fabric
        (:mod:`repro.serve.fabric`) routes traffic between them.  The
        ``#`` separator is reserved: a spanning tenant's base name may
        not contain it.  Sessions are incompatible with spanning --
        carryover rows would break the fabric's one-result-per-superstep
        row alignment.
    """

    name: str
    relaxations: RelaxationSet | None = None
    ordering_required: bool = True
    autotune: bool = True
    n_queues: int = 4
    n_ctas: int = 1
    session: bool = False
    session_max_carryover: int = 4096
    session_max_age_flushes: int = 8
    partitioned: bool = False
    span: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.relaxations is not None and self.autotune:
            # a pinned tenant is by definition not autotuned
            object.__setattr__(self, "autotune", False)
        if self.session_max_carryover < 1:
            raise ValueError("session_max_carryover must be >= 1")
        if self.session_max_age_flushes < 1:
            raise ValueError("session_max_age_flushes must be >= 1")
        if self.span < 1:
            raise ValueError("span must be >= 1")
        if self.span > 1:
            if "#" in self.name:
                raise ValueError(
                    "spanning tenant names may not contain '#' "
                    "(reserved as the sub-tenant separator)")
            if self.session:
                raise ValueError(
                    "session mode is incompatible with span > 1: carryover "
                    "rows would break fabric superstep row alignment")

    def sub_specs(self) -> list["TenantSpec"]:
        """The span-1 sub-tenant specs a spanning tenant expands into.

        ``span=1`` tenants expand to themselves; ``span=N`` yields N
        specs named ``name#0 .. name#N-1`` that are registered (and
        placed) as ordinary tenants.
        """
        if self.span == 1:
            return [self]
        return [replace(self, name=f"{self.name}#{i}", span=1)
                for i in range(self.span)]

    def initial_relaxations(self) -> RelaxationSet:
        """Where the tenant's engine starts on the lattice."""
        if self.relaxations is not None:
            return self.relaxations
        # autotuned tenants start fully compliant and earn promotions
        return RelaxationSet(wildcards=True, ordering=True, unexpected=True)


@dataclass(frozen=True)
class ServeRequest:
    """One admitted unit of client work: envelopes plus arrival time."""

    tenant: str
    seq: int
    arrival_vt: float
    messages: EnvelopeBatch
    requests: EnvelopeBatch

    @property
    def n_envelopes(self) -> int:
        """Total envelopes this request adds to the inbox."""
        return len(self.messages) + len(self.requests)


@dataclass(frozen=True)
class Ticket:
    """Immediate answer to a submission."""

    status: str
    tenant: str
    seq: int
    retry_after_vt: float | None = None
    reason: str = ""

    @property
    def accepted(self) -> bool:
        return self.status == ACCEPTED

    @property
    def shed(self) -> bool:
        """The request was not admitted (any non-accepted outcome)."""
        return self.status in (RETRYABLE, OVERLOADED, MIGRATING)

    @property
    def retry_hinted(self) -> bool:
        """The shed came with a deterministic virtual-time retry hint."""
        return self.status in (RETRYABLE, MIGRATING)


@dataclass
class FlushResult:
    """One batch flush: the outcome and the requests it covered."""

    tenant: str
    shard_id: int
    flush_seq: int
    flush_vt: float
    outcome: MatchOutcome
    covered_seqs: tuple[int, ...] = ()
    latencies_vt: tuple[float, ...] = ()
    engine_label: str = ""
    meta: dict = field(default_factory=dict)

    @property
    def completion_vt(self) -> float:
        """Virtual completion time: flush time plus modeled device time."""
        return self.flush_vt + self.outcome.seconds
