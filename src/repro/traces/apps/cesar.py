"""CESAR suite models: NEKBONE, MOCFE, CrystalRouter.

NEKBONE is one of the paper's two long-queue outliers: per-rank maximum
UMQ depth has a **mean of ~4,000 and a median of ~1,800** across ranks
(Figure 2) -- a heavily right-skewed distribution produced here by a few
"hot" gather ranks that receive an order of magnitude more traffic, which
is also the irregular rank-usage behaviour Section VI-A reports for it.
"""

from __future__ import annotations

import numpy as np

from .base import AppModel, TraceBuilder, ring_neighbors

__all__ = ["NEKBONE", "MOCFE", "CrystalRouter"]


class NEKBONE(AppModel):
    """Spectral-element CG with gather-scatter.

    Two communicators (solver + gather/scatter).  The gather/scatter
    phase floods a handful of hot ranks with contributions that are only
    consumed after the flood (deep UMQ); regular ranks exchange at a
    moderate, shallower depth.
    """

    name = "cesar_nekbone"
    full_name = "CESAR NEKBONE"
    suite = "cesar"
    description = "spectral-element CG; skewed gather floods, deep queues"
    n_communicators = 2
    default_ranks = 16
    default_steps = 2

    #: fraction of ranks that are hot gather targets
    HOT_FRACTION = 0.125
    #: messages flooding each hot rank per step before it posts
    HOT_BURST = 19_400
    #: flood depth for regular ranks per step
    REGULAR_BURST = 1_800

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        n_hot = max(1, int(self.HOT_FRACTION * n_ranks))
        nbrs = ring_neighbors(n_ranks, hops=4)
        for _step in range(steps):
            # solver halo on communicator 0: moderate, mostly preposted
            pairs = [(s, d) for s in range(n_ranks) for d in nbrs[s]]
            b.exchange(pairs, tag_of=lambda s, d, k: k % 3,
                       comm_of=lambda s, d, k: 0,
                       msgs_per_pair=2, prepost_fraction=0.8, rng=rng)
            # gather/scatter flood on communicator 1: sends first, posts
            # after -- this is what builds the deep unexpected queues.
            for dst in range(n_ranks):
                burst = self.HOT_BURST if dst < n_hot else self.REGULAR_BURST
                srcs = [s for s in range(n_ranks) if s != dst]
                per_src = max(1, burst // len(srcs))
                for s in srcs:
                    for k in range(per_src):
                        b.send(s, dst, tag=k % 7, comm=1)
                for s in srcs:
                    for k in range(per_src):
                        b.post(dst, src=s, tag=k % 7, comm=1)
            b.barrier(n_ranks)


class MOCFE(AppModel):
    """Method-of-characteristics neutronics: angular segment sweeps with
    a distinct tag per (angle, segment) -> thousands of tags across
    ~20 ring peers."""

    name = "cesar_mocfe"
    full_name = "CESAR MOCFE"
    suite = "cesar"
    description = "angle-segment sweeps, per-segment tags"
    default_ranks = 32
    default_steps = 4

    ANGLES = 16
    SEGMENTS = 24

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        nbrs = ring_neighbors(n_ranks, hops=8)
        for step in range(steps):
            for angle in range(self.ANGLES):
                pairs = [(s, d) for s in range(n_ranks)
                         for d in nbrs[s][:4]]
                base = (step * self.ANGLES + angle) * self.SEGMENTS
                # each pair carries a different characteristic segment
                b.exchange(pairs,
                           tag_of=lambda s, d, k, _b=base:
                               (_b + (s * 5 + d * 3) % self.SEGMENTS) % 60000,
                           prepost_fraction=0.4, rng=rng)
            b.barrier(n_ranks)


class CrystalRouter(AppModel):
    """Nek5000's crystal-router exchange: staged hypercube routing.

    log2(P) stages; in stage d every rank trades with its dimension-d
    hypercube partner using the stage number as tag -- few peers, few
    tags, perfectly regular.
    """

    name = "cesar_crystalrouter"
    full_name = "CESAR CrystalRouter"
    suite = "cesar"
    description = "hypercube-staged all-to-all routing"
    default_ranks = 32
    default_steps = 8

    def build(self, b: TraceBuilder, n_ranks: int, steps: int,
              rng: np.random.Generator) -> None:
        n_dims = max(1, int(np.floor(np.log2(n_ranks))))
        for _step in range(steps):
            for d in range(n_dims):
                pairs = []
                for s in range(n_ranks):
                    partner = s ^ (1 << d)
                    if partner < n_ranks:
                        pairs.append((s, partner))
                b.exchange(pairs, tag_of=lambda s, dd, k, dim=d: dim,
                           msgs_per_pair=2, prepost_fraction=0.6, rng=rng)
            b.barrier(n_ranks)
