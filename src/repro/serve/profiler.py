"""Live workload profiling: Table I statistics over a tenant's stream.

The paper's core result is that the right matcher is a *function of
measurable workload properties*: Table I's per-application statistics
(wildcard usage, peer counts, communicator counts, queue depths, tuple
distributions) decide which Table II relaxation point is safe and
profitable.  This module computes the same statistics **online**, over a
sliding window of a tenant's flushed batches, so the autotuner can make
that decision continuously instead of once per application port.

The statistics mirror :mod:`repro.traces.analyzer` (the offline Table I
reconstruction) and reuse its entropy machinery; UMQ/PRQ depth proxies
come from the per-flush unmatched counts, exactly what the Figure 2
queue replay measures offline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.envelope import ANY_SOURCE, ANY_TAG, EnvelopeBatch
from ..core.result import MatchOutcome
from ..traces.analyzer import normalized_entropy

__all__ = ["WorkloadProfile", "StreamProfiler"]


def _finite(x: float) -> float:
    """Clamp a windowed statistic to a finite float.

    Degenerate streams -- tiny tuple cardinality under huge message
    counts (Kripke-style sweeps, partitioned re-fires), or snapshot
    round-trips that widened counters to floats -- must never leak
    NaN/inf into a profile: every consumer (autotuner gates, bench
    records, EXPERIMENTS tables) treats these as ordinary numbers.
    """
    x = float(x)
    return x if np.isfinite(x) else 0.0


@dataclass(frozen=True)
class WorkloadProfile:
    """Table I-style statistics of a tenant's recent stream.

    All fields aggregate over the profiler's sliding window of flushes.
    """

    window_flushes: int
    n_messages: int
    n_requests: int
    src_wildcard_fraction: float
    tag_wildcard_fraction: float
    n_peers: int
    n_comms: int
    duplicate_tuple_fraction: float
    tag_entropy: float
    umq_depth_mean: float
    prq_depth_mean: float
    #: windowed sum of each flush's *excess* hottest-tuple multiplicity
    #: (max multiplicity - 1) over the windowed message count -- how much
    #: of the stream piles onto its single hottest tuple (the
    #: probe-chain length driver).  0.0 for an all-unique stream of any
    #: size; ~1.0 when one tuple carries a whole flush.
    dominant_tuple_fraction: float = 0.0

    @property
    def wildcard_fraction(self) -> float:
        """Requests wildcarding src or tag (upper bound of the two)."""
        return max(self.src_wildcard_fraction, self.tag_wildcard_fraction)

    @property
    def uses_wildcards(self) -> bool:
        """Did any windowed request carry a wildcard?"""
        return self.wildcard_fraction > 0.0

    @property
    def hash_friendly(self) -> bool:
        """Is the tuple stream diverse enough for the hash path?

        The paper's Figure 6(a) argument: a *dominant* duplicated tuple
        collides every probe chain.  Hash-table chain length is driven
        by the multiplicity of the hottest tuple, not by the aggregate
        duplicate count: a stream that repeats many *different* tuples
        a few times each (df_AMG re-sends the same neighbour/tag pairs
        every solver sweep, duplicate fraction ~0.9) keeps every chain
        short, while one tuple carrying a quarter of the stream
        serializes a quarter of the probes.  Gate on dominance, not on
        duplication.
        """
        return self.dominant_tuple_fraction < 0.25


@dataclass
class _FlushStats:
    """Per-flush raw counters the window aggregates.

    Set-valued stats are kept as the sorted unique *arrays*
    ``np.unique`` already produced -- the window aggregation is then a
    unique-of-concatenation, never a Python set union over items.
    """

    n_messages: int
    n_requests: int
    src_wildcards: int
    tag_wildcards: int
    peers: np.ndarray
    comms: np.ndarray
    duplicates: int
    dominant: int
    tags: np.ndarray
    tag_counts: np.ndarray
    umq_depth: int
    prq_depth: int


class StreamProfiler:
    """Sliding-window Table I statistics over flushed batches.

    Parameters
    ----------
    window_flushes:
        Number of most-recent flushes the profile aggregates over.  The
        window is what lets a tenant *recover* promotions: a one-off
        wildcard burst ages out instead of pinning the tenant to the
        matrix path forever.
    """

    def __init__(self, window_flushes: int = 8) -> None:
        if window_flushes < 1:
            raise ValueError("window_flushes must be >= 1")
        self.window_flushes = window_flushes
        self._window: deque[_FlushStats] = deque(maxlen=window_flushes)
        self.total_flushes = 0

    def ingest(self, messages: EnvelopeBatch, requests: EnvelopeBatch,
               outcome: MatchOutcome) -> None:
        """Fold one flush into the window.

        Pure column work: the tuple statistics come from one
        ``np.unique`` over the flush's packed64 key column (reusing the
        batch's cached keys when the columnar data plane already packed
        them), never from per-envelope Python iteration.
        """
        src_wc = int(np.count_nonzero(requests.src == ANY_SOURCE))
        tag_wc = int(np.count_nonzero(requests.tag == ANY_TAG))
        empty = np.array([], dtype=np.int64)
        if len(messages):
            packed = messages._packed
            if packed is None:
                packed = ((messages.comm << 48)
                          | (messages.src << 16) | messages.tag)
            _, tuple_counts = np.unique(packed, return_counts=True)
            duplicates = len(messages) - int(tuple_counts.size)
            dominant = int(tuple_counts.max()) - 1
            peers = np.unique(messages.src)
            tags, counts = np.unique(messages.tag, return_counts=True)
        else:
            duplicates = 0
            dominant = 0
            peers = empty
            tags, counts = empty, empty
        comms = (np.unique(np.concatenate([messages.comm, requests.comm]))
                 if (len(messages) or len(requests)) else empty)
        self._window.append(_FlushStats(
            n_messages=len(messages),
            n_requests=len(requests),
            src_wildcards=src_wc,
            tag_wildcards=tag_wc,
            peers=peers,
            comms=comms,
            duplicates=duplicates,
            dominant=dominant,
            tags=tags,
            tag_counts=counts,
            umq_depth=outcome.n_messages - outcome.matched_count,
            prq_depth=outcome.n_requests - outcome.matched_count,
        ))
        self.total_flushes += 1

    # -- snapshot format ----------------------------------------------------------

    def export_state(self) -> dict:
        """Window contents for the serve snapshot format."""
        return {"window_flushes": self.window_flushes,
                "total_flushes": self.total_flushes,
                "window": [{"n_messages": s.n_messages,
                            "n_requests": s.n_requests,
                            "src_wildcards": s.src_wildcards,
                            "tag_wildcards": s.tag_wildcards,
                            "peers": s.peers,
                            "comms": s.comms,
                            "duplicates": s.duplicates,
                            "dominant": s.dominant,
                            "tags": s.tags,
                            "tag_counts": s.tag_counts,
                            "umq_depth": s.umq_depth,
                            "prq_depth": s.prq_depth}
                           for s in self._window]}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`export_state`."""
        self.window_flushes = int(state["window_flushes"])
        self.total_flushes = int(state["total_flushes"])
        self._window = deque(
            (_FlushStats(
                n_messages=int(s["n_messages"]),
                n_requests=int(s["n_requests"]),
                src_wildcards=int(s["src_wildcards"]),
                tag_wildcards=int(s["tag_wildcards"]),
                peers=np.asarray(s["peers"], dtype=np.int64),
                comms=np.asarray(s["comms"], dtype=np.int64),
                duplicates=int(s["duplicates"]),
                dominant=int(s["dominant"]),
                tags=np.asarray(s["tags"], dtype=np.int64),
                tag_counts=np.asarray(s["tag_counts"]),
                umq_depth=int(s["umq_depth"]),
                prq_depth=int(s["prq_depth"]))
             for s in state["window"]),
            maxlen=self.window_flushes)

    def profile(self) -> WorkloadProfile:
        """The aggregated profile of the current window."""
        w = list(self._window)
        n_msgs = sum(s.n_messages for s in w)
        n_reqs = sum(s.n_requests for s in w)
        n_peers = int(np.unique(np.concatenate(
            [s.peers for s in w])).size) if w else 0
        n_comms = int(np.unique(np.concatenate(
            [s.comms for s in w])).size) if w else 0
        # merge the per-flush (tag, count) columns by tag
        if w:
            all_tags = np.concatenate([s.tags for s in w])
            all_counts = np.concatenate([s.tag_counts for s in w])
            if all_tags.size:
                _, inverse = np.unique(all_tags, return_inverse=True)
                merged_counts = np.bincount(inverse, weights=all_counts)
            else:
                merged_counts = np.array([])
        else:
            merged_counts = np.array([])
        return WorkloadProfile(
            window_flushes=len(w),
            n_messages=n_msgs,
            n_requests=n_reqs,
            src_wildcard_fraction=(sum(s.src_wildcards for s in w) / n_reqs
                                   if n_reqs else 0.0),
            tag_wildcard_fraction=(sum(s.tag_wildcards for s in w) / n_reqs
                                   if n_reqs else 0.0),
            n_peers=n_peers,
            n_comms=n_comms,
            duplicate_tuple_fraction=_finite(
                sum(s.duplicates for s in w) / n_msgs if n_msgs else 0.0),
            tag_entropy=_finite(normalized_entropy(merged_counts)),
            umq_depth_mean=_finite(np.mean([s.umq_depth for s in w])
                                   if w else 0.0),
            prq_depth_mean=_finite(np.mean([s.prq_depth for s in w])
                                   if w else 0.0),
            dominant_tuple_fraction=_finite(
                sum(s.dominant for s in w) / n_msgs if n_msgs else 0.0),
        )
