"""EXT7: end-to-end message rate through the full simulated stack.

The paper's opening argument: "Message matching is key to high message
rates, which again is key to many applications."  This bench measures
the *achievable message rate* of a whole simulated cluster -- matching
time plus wire time -- and shows where the bottleneck sits:

* under full MPI semantics, matching dominates and caps the cluster far
  below what the links could carry;
* the relaxations move the bottleneck to the wire (NVLink vs PCIe then
  matters, as it should in a healthy design).
"""

from __future__ import annotations

from repro.bench import Table, write_result
from repro.core.relaxations import RelaxationSet
from repro.mpi import Cluster, NVLINK, PCIE3

CONFIGS = {
    "full MPI": RelaxationSet(),
    "no wildcards": RelaxationSet(wildcards=False),
    "unordered": RelaxationSet(wildcards=False, ordering=False),
}

N_MESSAGES = 2048
BATCH = 256  # messages exchanged per progress round


def run_cluster(rel: RelaxationSet, link) -> dict:
    """Pairwise streaming between 2 ranks; returns time components."""
    cluster = Cluster(2, relaxations=rel, link=link, n_queues=16, n_ctas=16)
    sent = 0
    while sent < N_MESSAGES:
        n = min(BATCH, N_MESSAGES - sent)
        reqs = [cluster.rank(1).irecv(src=0, tag=(sent + i) % 1024)
                for i in range(n)]
        for i in range(n):
            cluster.rank(0).isend(1, None, tag=(sent + i) % 1024)
        for r in reqs:
            r.wait()
        sent += n
    match_s = cluster.match_seconds
    wire_s = cluster.network.wire_busy_seconds
    total = match_s + wire_s
    return {"match_us": match_s * 1e6, "wire_us": wire_s * 1e6,
            "rate": N_MESSAGES / total,
            "bottleneck": "matching" if match_s > wire_s else "wire"}


def test_report_ext7_message_rate():
    table = Table(
        title=f"EXT7 -- end-to-end message rate, {N_MESSAGES} messages "
              "(matching + wire time)",
        columns=["relaxation", "link", "match time", "wire time",
                 "msg rate", "bottleneck"])
    results = {}
    for label, rel in CONFIGS.items():
        for link in (NVLINK, PCIE3):
            r = run_cluster(rel, link)  # noqa: PERF401 - readability
            results[(label, link.name)] = r
            table.add(label, link.name, f"{r['match_us']:.0f} us",
                      f"{r['wire_us']:.0f} us",
                      f"{r['rate'] / 1e6:.1f} M msg/s", r["bottleneck"])
    table.note("paper's motivation: under MPI semantics matching is the "
               "bottleneck; the relaxations shift time back toward the "
               "wire, where the link choice finally matters")
    write_result("ext7_message_rate", table.show())

    # full MPI: matching-bound regardless of link
    assert results[("full MPI", "nvlink")]["bottleneck"] == "matching"
    assert results[("full MPI", "pcie3")]["bottleneck"] == "matching"
    # unordered on the slow link: the wire finally dominates
    assert results[("unordered", "pcie3")]["bottleneck"] == "wire"
    # matching's share of total time falls monotonically down the ladder
    for link in ("nvlink", "pcie3"):
        shares = []
        for label in CONFIGS:
            r = results[(label, link)]
            shares.append(r["match_us"] / (r["match_us"] + r["wire_us"]))
        assert shares[0] > shares[1] > shares[2], (link, shares)
    # the relaxation ladder lifts the end-to-end rate monotonically
    rates = [results[(label, "nvlink")]["rate"] for label in CONFIGS]
    assert rates[0] < rates[1] < rates[2]


def test_perf_cluster_streaming(benchmark):
    def stream():
        cluster = Cluster(2)
        reqs = [cluster.rank(1).irecv(src=0, tag=t) for t in range(64)]
        for t in range(64):
            cluster.rank(0).isend(1, None, tag=t)
        for r in reqs:
            r.wait()
        return cluster

    cluster = benchmark(stream)
    assert cluster.stats()[1]["matches"] == 64


if __name__ == "__main__":
    test_report_ext7_message_rate()
