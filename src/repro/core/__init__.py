"""Core message-matching library: the paper's contribution.

Envelopes and queues, the MPI-compliant matrix matcher (Section V), the
three relaxations and their matchers (Section VI), the CPU list baseline,
and the :class:`MatchingEngine` facade that maps a relaxation set to the
data structure Table II prescribes.
"""

from .adaptive import AdaptiveMatcher, MatchPlan
from .bucket_matching import BucketMatcher
from .compaction import charge_compaction, compact_batch, compaction_map
from .engine import DemotionEvent, MatchingEngine
from .envelope import (ANY_SOURCE, ANY_TAG, Envelope, EnvelopeBatch, pack64,
                       unpack64)
from .hash_matching import HashMatcher, HashTableConfig
from .hashing import HASH_FUNCTIONS, fibonacci32, fnv1a32, fold64, identity32, \
    jenkins32
from .list_matching import CPUSpec, ListMatcher, XEON_E5
from .matrix_matching import DEFAULT_WINDOW, MatrixMatcher
from .partitioned import PartitionedMatcher
from .queues import QueueStats, UnifiedQueue
from .relaxations import TABLE_II_CONFIGS, RelaxationSet, WorkloadViolation
from .result import NO_MATCH, MatchOutcome
from .verify import (SemanticsViolation, check_mpi_ordering, check_relaxed,
                     reference_match)

__all__ = [
    "ANY_SOURCE", "ANY_TAG", "Envelope", "EnvelopeBatch", "pack64", "unpack64",
    "NO_MATCH", "MatchOutcome",
    "MatchingEngine", "DemotionEvent", "RelaxationSet", "TABLE_II_CONFIGS", "WorkloadViolation",
    "MatrixMatcher", "DEFAULT_WINDOW",
    "PartitionedMatcher", "AdaptiveMatcher", "MatchPlan",
    "HashMatcher", "HashTableConfig",
    "HASH_FUNCTIONS", "jenkins32", "fnv1a32", "fibonacci32", "identity32",
    "fold64",
    "ListMatcher", "BucketMatcher", "CPUSpec", "XEON_E5",
    "UnifiedQueue", "QueueStats",
    "compact_batch", "compaction_map", "charge_compaction",
    "reference_match", "check_mpi_ordering", "check_relaxed",
    "SemanticsViolation",
]
