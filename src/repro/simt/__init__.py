"""Functional SIMT simulator substrate.

Implements the GPU execution model the paper's algorithms are written
against: warps with ballot/ffs/shuffle intrinsics (:mod:`.warp`), CTAs
with shared memory and barriers (:mod:`.cta`), an occupancy calculator
(:mod:`.occupancy`), a memory transaction model (:mod:`.memory`), device
descriptors for the paper's Kepler/Maxwell/Pascal testbeds (:mod:`.gpu`),
a calibrated throughput timing model (:mod:`.timing`, :mod:`.kernel`),
and an opt-in compute-sanitizer-style analysis pass (:mod:`.sanitize`).
"""

from .cta import CTA, MAX_WARPS_PER_CTA
from .gpu import GPU, GPUSpec, KEPLER_K80, MAXWELL_M40, PASCAL_GTX1080
from .kernel import KernelLaunch, LaunchResult
from .memory import (GMEM_WORD_BYTES, SMEM_WORD_BYTES, GlobalMemory,
                     SharedMemory, bank_conflicts, coalesced_transactions)
from .occupancy import (KernelResources, OccupancyResult, occupancy,
                        serialization_factor)
from .sanitize import CHECKERS, Sanitizer
from .sanitize_report import (Finding, SanitizerError, SanitizerReport)
from .sm import ScheduleResult, SMScheduler, WarpStream, streams_from_mix
from .timing import CostLedger, PhaseCost, TimingBreakdown, TimingModel
from .warp import (FULL_MASK, WARP_SIZE, Warp, WarpDivergenceError, brev32,
                   clz32, ffs32, lane_ids, lanemask_lt, pack_ballot, popc32,
                   unpack_ballot)

__all__ = [
    "CTA", "MAX_WARPS_PER_CTA",
    "GPU", "GPUSpec", "KEPLER_K80", "MAXWELL_M40", "PASCAL_GTX1080",
    "KernelLaunch", "LaunchResult",
    "GlobalMemory", "SharedMemory", "bank_conflicts", "coalesced_transactions",
    "GMEM_WORD_BYTES", "SMEM_WORD_BYTES",
    "KernelResources", "OccupancyResult", "occupancy", "serialization_factor",
    "Sanitizer", "SanitizerReport", "SanitizerError", "Finding", "CHECKERS",
    "SMScheduler", "ScheduleResult", "WarpStream", "streams_from_mix",
    "CostLedger", "PhaseCost", "TimingBreakdown", "TimingModel",
    "FULL_MASK", "WARP_SIZE", "Warp", "WarpDivergenceError",
    "brev32", "clz32", "ffs32", "lane_ids", "lanemask_lt",
    "pack_ballot", "popc32", "unpack_ballot",
]
