"""MatchingService: replay determinism, pass-through equivalence,
shedding, deadline timers, and obs accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import MatchingEngine
from repro.core.envelope import EnvelopeBatch
from repro.obs import Observability
from repro.serve import (AdmissionPolicy, BatchPolicy, MatchingService,
                         TenantSpec, demo)
from tests.conftest import permuted_pair


def _batch_pair(rng, n: int = 16):
    return permuted_pair(rng, n, n_ranks=8, n_tags=4)


class TestLifecycle:
    def test_duplicate_registration_rejected(self):
        svc = MatchingService()
        svc.register(TenantSpec(name="t"))
        with pytest.raises(ValueError):
            svc.register(TenantSpec(name="t"))
        with pytest.raises(ValueError):
            MatchingService(n_shards=0)

    def test_placement_is_stable_across_instances(self):
        names = [f"tenant-{i}" for i in range(8)]
        placements = []
        for _ in range(2):
            svc = MatchingService(n_shards=4)
            for name in names:
                svc.register(TenantSpec(name=name))
            placements.append([svc._placement[n] for n in names])
        assert placements[0] == placements[1]
        assert len(set(placements[0])) > 1   # actually spreads out

    def test_size_watermark_flushes_synchronously(self, rng):
        msgs, reqs = _batch_pair(rng, 16)
        svc = MatchingService(batching=BatchPolicy(max_envelopes=32))
        svc.register(TenantSpec(name="t", autotune=False))
        ticket = svc.submit("t", msgs, reqs)
        assert ticket.accepted
        assert len(svc.results) == 1
        assert svc.results[0].covered_seqs == (0,)

    def test_deadline_timer_flushes_small_batches(self, rng):
        msgs, reqs = _batch_pair(rng, 4)
        policy = BatchPolicy(max_envelopes=10_000, max_delay_vt=0.5)
        svc = MatchingService(batching=policy)
        svc.register(TenantSpec(name="t", autotune=False))
        svc.submit("t", msgs, reqs, at_vt=1.0)
        assert svc.results == []
        fired = svc.advance_to(1.4)
        assert fired == []                    # deadline is 1.5
        fired = svc.advance_to(2.0)
        assert len(fired) == 1
        assert fired[0].flush_vt == pytest.approx(1.5)

    def test_stale_deadline_timer_is_ignored(self, rng):
        """A size-watermark flush must not double-flush when the armed
        deadline timer later fires on a fresh epoch."""
        msgs, reqs = _batch_pair(rng, 16)
        policy = BatchPolicy(max_envelopes=48, max_delay_vt=0.5)
        svc = MatchingService(batching=policy)
        svc.register(TenantSpec(name="t", autotune=False))
        svc.submit("t", msgs, reqs, at_vt=0.0)   # arms deadline at 0.5
        svc.submit("t", msgs, reqs, at_vt=0.1)   # 64 envelopes: size flush
        assert len(svc.results) == 1
        svc.advance_to(1.0)                       # stale timer fires: no-op
        assert len(svc.results) == 1


class TestShedding:
    def _overloaded_service(self):
        svc = MatchingService(
            admission=AdmissionPolicy(capacity=8, soft_fraction=0.5),
            batching=BatchPolicy(max_envelopes=10_000, max_delay_vt=10.0))
        svc.register(TenantSpec(name="t", autotune=False))
        return svc

    def test_graduated_shedding(self):
        svc = self._overloaded_service()
        msgs = EnvelopeBatch(src=[0, 1], tag=[1, 2])
        reqs = EnvelopeBatch(src=[0, 1], tag=[1, 2])
        t0 = svc.submit("t", msgs, reqs)          # depth 0 -> accepted
        t1 = svc.submit("t", msgs, reqs)          # depth 4 -> retryable
        big = EnvelopeBatch(src=list(range(5)), tag=list(range(5)))
        t2 = svc.submit("t", big, big)            # would exceed capacity
        assert t0.accepted
        assert t1.status == "retryable" and t1.retry_after_vt is not None
        assert t2.status == "overloaded"
        assert svc.shed_counts == {"retryable": 1, "overloaded": 1,
                                   "migrating": 0}

    def test_shed_requests_are_not_matched(self):
        svc = self._overloaded_service()
        msgs = EnvelopeBatch(src=[0, 1], tag=[1, 2])
        svc.submit("t", msgs, msgs)
        svc.submit("t", msgs, msgs)               # shed
        svc.drain()
        covered = [s for r in svc.results for s in r.covered_seqs]
        assert covered == [0]

    def test_oversized_request_sheds_even_when_idle(self):
        svc = self._overloaded_service()
        big = EnvelopeBatch(src=list(range(9)), tag=list(range(9)))
        ticket = svc.submit("t", big, EnvelopeBatch.empty())
        assert ticket.status == "overloaded"
        assert "capacity" in ticket.reason


class TestPassThrough:
    """A single-tenant, no-shedding, flush-per-request serve run is
    bit-identical to calling the engine directly (the serve-layer
    fast-path equivalence contract)."""

    def test_outcomes_bit_identical_to_direct_engine(self, rng):
        batches = [_batch_pair(rng, n) for n in (1, 4, 16, 32)]
        svc = MatchingService(batching=BatchPolicy(max_envelopes=1))
        svc.register(TenantSpec(name="t", autotune=False))
        for msgs, reqs in batches:
            ticket = svc.submit("t", msgs, reqs)
            assert ticket.accepted
        assert len(svc.results) == len(batches)

        spec = TenantSpec(name="direct", autotune=False)
        engine = MatchingEngine(relaxations=spec.initial_relaxations(),
                                n_queues=spec.n_queues, n_ctas=spec.n_ctas,
                                demote_on_violation=True)
        for result, (msgs, reqs) in zip(svc.results, batches):
            direct = engine.match(msgs, reqs)
            assert np.array_equal(result.outcome.request_to_message,
                                  direct.request_to_message)
            assert result.outcome.seconds == direct.seconds
            assert result.outcome.cycles == direct.cycles
            assert result.outcome.iterations == direct.iterations


class TestReplayDeterminism:
    """Two same-seed runs produce identical outcomes, shed counts, and
    retune events -- the acceptance contract of the virtual-time design."""

    def _fingerprint(self, seed: int) -> dict:
        service, workload, _ = demo(seed=seed, steps=2, n_ranks=8)
        return {
            "report": service.report(),
            "shed": service.shed_counts,
            "retunes": [(e.tenant, e.vt, e.from_label, e.to_label,
                         e.direction) for e in service.retune_events],
            "covered": [r.covered_seqs for r in service.results],
            "latencies": service.latencies_vt.tolist(),
            "matches": [r.outcome.request_to_message.tolist()
                        for r in service.results],
            "tickets": [(t.status, t.seq) for t in service.tickets],
        }

    def test_same_seed_is_bit_identical(self):
        assert self._fingerprint(seed=11) == self._fingerprint(seed=11)

    def test_report_is_json_friendly(self):
        import json
        service, _, _ = demo(seed=0, steps=2, n_ranks=8)
        json.dumps(service.report())


class TestObservability:
    def test_counters_mirror_service_accounting(self, rng):
        obs = Observability.enabled()
        msgs, reqs = _batch_pair(rng, 16)
        svc = MatchingService(batching=BatchPolicy(max_envelopes=16),
                              obs=obs)
        svc.register(TenantSpec(name="t", autotune=False))
        for _ in range(3):
            svc.submit("t", msgs, reqs)
        svc.drain()
        counters = obs.metrics.snapshot()["counters"]
        assert counters["serve.submitted"] == 3
        assert counters["serve.accepted"] == 3
        assert counters["serve.flushes"] == len(svc.results)
        assert counters["serve.matched"] == sum(
            r.outcome.matched_count for r in svc.results)

    def test_off_by_default_is_unobserved(self, rng):
        """obs=None must not be required anywhere on the serve path."""
        msgs, reqs = _batch_pair(rng, 8)
        svc = MatchingService()
        svc.register(TenantSpec(name="t"))
        svc.submit("t", msgs, reqs)
        svc.drain()
        assert svc.results
