"""Autotuner: the Table II lattice walk, hysteresis, and rebuild costs."""

from __future__ import annotations

import pytest

from repro.core.adaptive import RELAUNCH_OVERHEAD_CYCLES
from repro.core.envelope import ANY_SOURCE, EnvelopeBatch
from repro.core.relaxations import RelaxationSet
from repro.serve import (LATTICE, Autotuner, MatchingService, TenantSpec,
                         WorkloadProfile, lattice_rank)

MATRIX, PARTITIONED, HASH = LATTICE


def profile(*, wildcard_fraction: float = 0.0,
            duplicate_fraction: float = 0.0,
            dominant_fraction: float = 0.0) -> WorkloadProfile:
    """A synthetic windowed profile with the knobs the policy reads."""
    return WorkloadProfile(
        window_flushes=4, n_messages=100, n_requests=100,
        src_wildcard_fraction=wildcard_fraction, tag_wildcard_fraction=0.0,
        n_peers=8, n_comms=1,
        duplicate_tuple_fraction=duplicate_fraction,
        tag_entropy=0.9, umq_depth_mean=2.0, prq_depth_mean=2.0,
        dominant_tuple_fraction=dominant_fraction)


class TestLattice:
    def test_three_points_in_rank_order(self):
        assert [lattice_rank(r) for r in LATTICE] == [0, 1, 2]
        assert MATRIX.label() == "wc+ord+unexp"
        assert PARTITIONED.label() == "nowc+ord+unexp"
        assert HASH.label() == "nowc+noord+unexp"

    def test_rank_ignores_unexpected_axis(self):
        assert lattice_rank(RelaxationSet(wildcards=False, ordering=True,
                                          unexpected=False)) == 1


class TestTargets:
    def test_wildcards_pin_matrix(self):
        tuner = Autotuner(TenantSpec(name="t", ordering_required=False))
        assert tuner.target_rank(profile(wildcard_fraction=0.1)) == 0

    def test_ordering_contract_caps_at_partitioned(self):
        tuner = Autotuner(TenantSpec(name="t", ordering_required=True))
        assert tuner.target_rank(profile()) == 1

    def test_unordered_hash_friendly_reaches_hash(self):
        tuner = Autotuner(TenantSpec(name="t", ordering_required=False))
        assert tuner.target_rank(profile()) == 2

    def test_dominant_tuple_blocks_hash(self):
        tuner = Autotuner(TenantSpec(name="t", ordering_required=False))
        assert tuner.target_rank(profile(dominant_fraction=0.4)) == 1

    def test_diverse_duplicates_do_not_block_hash(self):
        """High aggregate duplication with no dominant tuple (df_AMG's
        shape: the same neighbour/tag pairs re-sent every sweep) keeps
        probe chains short and must stay hash-eligible."""
        tuner = Autotuner(TenantSpec(name="t", ordering_required=False))
        assert tuner.target_rank(profile(duplicate_fraction=0.9,
                                         dominant_fraction=0.05)) == 2


class TestWalk:
    def test_wildcard_tenant_stays_on_matrix(self):
        tuner = Autotuner(TenantSpec(name="t"), promote_after=1)
        for _ in range(5):
            assert tuner.consider(MATRIX, profile(wildcard_fraction=0.2),
                                  0.0) is None
        assert tuner.events == []

    def test_promotion_to_partitioned_after_streak(self):
        tuner = Autotuner(TenantSpec(name="t", ordering_required=True),
                          promote_after=3)
        clean = profile()
        assert tuner.consider(MATRIX, clean, 0.1) is None
        assert tuner.consider(MATRIX, clean, 0.2) is None
        new = tuner.consider(MATRIX, clean, 0.3)
        assert new == PARTITIONED
        (event,) = tuner.events
        assert event.direction == "promote"
        assert event.from_label == "wc+ord+unexp"
        assert event.to_label == "nowc+ord+unexp"
        assert event.vt == pytest.approx(0.3)

    def test_promotion_to_hash_needs_declared_unordered(self):
        tuner = Autotuner(TenantSpec(name="t", ordering_required=False),
                          promote_after=1)
        new = tuner.consider(MATRIX, profile(), 0.0)
        assert new == HASH
        assert tuner.events[-1].to_label == "nowc+noord+unexp"

    def test_demotion_is_immediate(self):
        tuner = Autotuner(TenantSpec(name="t", ordering_required=False),
                          promote_after=5)
        new = tuner.consider(HASH, profile(wildcard_fraction=0.5), 1.0)
        assert new == MATRIX
        assert tuner.events[-1].direction == "demote"

    def test_every_transition_charges_one_relaunch(self):
        tuner = Autotuner(TenantSpec(name="t", ordering_required=False),
                          promote_after=1)
        tuner.consider(MATRIX, profile(), 0.0)               # promote
        tuner.consider(HASH, profile(wildcard_fraction=1.0), 1.0)  # demote
        assert len(tuner.events) == 2
        for event in tuner.events:
            assert event.extra_cycles == RELAUNCH_OVERHEAD_CYCLES
            assert event.extra_seconds > 0.0

    def test_interrupted_streak_restarts(self):
        tuner = Autotuner(TenantSpec(name="t"), promote_after=2)
        clean, wild = profile(), profile(wildcard_fraction=0.3)
        assert tuner.consider(MATRIX, clean, 0.0) is None   # streak 1
        assert tuner.consider(MATRIX, wild, 0.1) is None    # target = current
        assert tuner.consider(MATRIX, clean, 0.2) is None   # streak restarts
        assert tuner.consider(MATRIX, clean, 0.3) == PARTITIONED

    def test_stable_workload_never_oscillates(self):
        """Once settled on the right point, no further retunes happen."""
        tuner = Autotuner(TenantSpec(name="t", ordering_required=True),
                          promote_after=2)
        current = MATRIX
        clean = profile()
        for i in range(20):
            new = tuner.consider(current, clean, float(i))
            if new is not None:
                current = new
        assert current == PARTITIONED
        assert len(tuner.events) == 1   # one promotion, then steady state

    def test_pinned_tenant_never_retuned(self):
        spec = TenantSpec(name="t", relaxations=HASH)
        assert spec.autotune is False
        tuner = Autotuner(spec, promote_after=1)
        assert tuner.consider(HASH, profile(wildcard_fraction=1.0),
                              0.0) is None
        assert tuner.events == []

    def test_external_demotion_carries_no_extra_cost(self):
        tuner = Autotuner(TenantSpec(name="t"))
        tuner.record_external_demotion("nowc+ord+unexp", "wc+ord+unexp",
                                       "wildcard in batch", 2.0)
        (event,) = tuner.events
        assert event.extra_cycles == 0.0 and event.extra_seconds == 0.0
        assert event.direction == "demote"
        assert "engine demotion" in event.reason

    def test_rejects_bad_promote_after(self):
        with pytest.raises(ValueError):
            Autotuner(TenantSpec(name="t"), promote_after=0)


class TestEndToEnd:
    """The acceptance lattice walk, through the full service."""

    def _drive(self, spec: TenantSpec, messages, requests,
               rounds: int = 6) -> MatchingService:
        svc = MatchingService(n_shards=1, seed=3, promote_after=2,
                              profile_window=2)
        svc.register(spec)
        for i in range(rounds):
            svc.submit(spec.name, messages, requests,
                       at_vt=float(i) * 0.01)
            svc.drain()
        return svc

    def test_wildcard_stream_stays_matrix(self):
        msgs = EnvelopeBatch(src=[0, 1, 2, 3], tag=[1, 2, 3, 4])
        reqs = EnvelopeBatch(src=[ANY_SOURCE] * 4, tag=[1, 2, 3, 4])
        svc = self._drive(TenantSpec(name="wc"), msgs, reqs)
        assert svc.tenant("wc").relaxations.label() == "wc+ord+unexp"
        assert svc.retune_events == []

    def test_clean_ordered_stream_earns_partitioned(self):
        msgs = EnvelopeBatch(src=[0, 1, 2, 3], tag=[1, 2, 3, 4])
        svc = self._drive(TenantSpec(name="ord", ordering_required=True),
                          msgs, msgs.take([3, 2, 1, 0]))
        assert svc.tenant("ord").relaxations.label() == "nowc+ord+unexp"
        labels = [(e.from_label, e.to_label, e.direction)
                  for e in svc.retune_events]
        assert labels == [("wc+ord+unexp", "nowc+ord+unexp", "promote")]

    def test_unordered_stream_earns_hash(self):
        msgs = EnvelopeBatch(src=[0, 1, 2, 3], tag=[1, 2, 3, 4])
        svc = self._drive(TenantSpec(name="uno", ordering_required=False),
                          msgs, msgs.take([3, 2, 1, 0]))
        assert svc.tenant("uno").relaxations.label() == "nowc+noord+unexp"

    def test_retune_cost_charged_exactly_once(self):
        """The flush after a promotion carries the relaunch cycles; later
        flushes do not."""
        msgs = EnvelopeBatch(src=[0, 1, 2, 3], tag=[1, 2, 3, 4])
        svc = self._drive(TenantSpec(name="ord"), msgs,
                          msgs.take([0, 1, 2, 3]), rounds=8)
        charged = [r.outcome.meta.get("retune_charged", 0.0)
                   for r in svc.results]
        assert sum(1 for c in charged if c > 0) == len(svc.retune_events) == 1
        assert max(charged) == RELAUNCH_OVERHEAD_CYCLES
