"""Admission control: graduated shedding and deterministic decisions."""

from __future__ import annotations

import pytest

from repro.serve.admission import AdmissionController, AdmissionPolicy
from repro.serve.messages import ACCEPTED, OVERLOADED, RETRYABLE


class TestPolicy:
    def test_soft_watermark(self):
        pol = AdmissionPolicy(capacity=100, soft_fraction=0.75)
        assert pol.soft_watermark == 75

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(capacity=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(soft_fraction=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(soft_fraction=1.5)


class TestController:
    def test_accepts_under_soft_watermark(self):
        ctl = AdmissionController(AdmissionPolicy(capacity=100))
        status, retry, reason = ctl.decide(10, inbox_depth=0)
        assert status == ACCEPTED and retry is None and reason == ""
        assert ctl.admitted == 1

    def test_retryable_above_soft_watermark(self):
        ctl = AdmissionController(
            AdmissionPolicy(capacity=100, soft_fraction=0.5),
            default_retry_after_vt=0.25)
        status, retry, reason = ctl.decide(10, inbox_depth=60)
        assert status == RETRYABLE
        assert retry == pytest.approx(0.25)
        assert "soft watermark" in reason
        assert ctl.shed_retryable == 1

    def test_overloaded_at_capacity(self):
        ctl = AdmissionController(AdmissionPolicy(capacity=100))
        status, retry, _ = ctl.decide(10, inbox_depth=95)
        assert status == OVERLOADED and retry is None
        assert ctl.shed_overloaded == 1

    def test_oversized_request_always_overloaded(self):
        ctl = AdmissionController(AdmissionPolicy(capacity=100))
        status, _, reason = ctl.decide(101, inbox_depth=0)
        assert status == OVERLOADED
        assert "exceeds shard capacity" in reason

    def test_soft_fraction_one_disables_retryable_band(self):
        ctl = AdmissionController(
            AdmissionPolicy(capacity=100, soft_fraction=1.0))
        assert ctl.decide(10, inbox_depth=89)[0] == ACCEPTED
        assert ctl.decide(10, inbox_depth=91)[0] == OVERLOADED
        assert ctl.shed_retryable == 0

    def test_policy_retry_hint_overrides_default(self):
        ctl = AdmissionController(
            AdmissionPolicy(capacity=10, soft_fraction=0.5,
                            retry_after_vt=2.0),
            default_retry_after_vt=0.1)
        _, retry, _ = ctl.decide(1, inbox_depth=9)
        assert retry == pytest.approx(2.0)

    def test_decisions_are_a_pure_function_of_inputs(self):
        """Identical (envelopes, depth) streams shed identically."""
        stream = [(10, 0), (10, 60), (10, 95), (200, 0), (1, 49)]
        pol = AdmissionPolicy(capacity=100, soft_fraction=0.5)
        runs = []
        for _ in range(2):
            ctl = AdmissionController(pol)
            runs.append([ctl.decide(n, d) for n, d in stream])
        assert runs[0] == runs[1]

    def test_shed_total(self):
        ctl = AdmissionController(AdmissionPolicy(capacity=10,
                                                  soft_fraction=0.5))
        ctl.decide(5, inbox_depth=0)    # accepted (right at the watermark)
        ctl.decide(6, inbox_depth=5)    # overloaded (would exceed capacity)
        ctl.decide(4, inbox_depth=5)    # retryable (above soft watermark 5)
        assert ctl.admitted == 1
        assert ctl.shed_total == 2
