"""Randomized differential-oracle suite for the matching relaxations.

Every case builds a seeded workload (random tuples, wildcards, multiple
communicators, unexpected-message ratios, or a synthetic proxy-app trace
from :mod:`repro.traces.generator`) and cross-checks the GPU matchers
against the sequential reference oracle, asserting exactly what each
relaxation promises:

* :class:`ListMatcher` and :class:`MatrixMatcher` implement full MPI
  semantics: their assignment must equal :func:`reference_match` bit for
  bit on *every* workload, wildcards included.
* :class:`PartitionedMatcher` only gives up ``MPI_ANY_SOURCE``: on any
  workload whose requests lack it, the assignment must still equal the
  reference (tag wildcards stay legal).
* :class:`HashMatcher` gives up ordering and wildcards: its outcome must
  be *valid* under relaxed semantics (envelope-compatible pairs, no
  double matching), can never out-match the oracle, and must reach the
  oracle's count on fully-matchable workloads.

The grid below is 51 case shapes x 5 fixed seeds = 255 generated cases,
comfortably above the 200-case floor, and runs in tier-1.  The
``refire-*`` shapes model partitioned/Benchpark streams -- a tiny tuple
cardinality re-fired many times -- and the ``trace-bp_*`` shapes lift
the same signature from the AMG2023 / Kripke / Laghos app models.  A
final chaos-marked case (outside tier-1) re-fires partitioned channels
across a worker SIGKILL and checks the recovered payload stream against
a clean run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.envelope import ANY_SOURCE, ANY_TAG, EnvelopeBatch
from repro.core.hash_matching import HashMatcher
from repro.core.list_matching import ListMatcher
from repro.core.matrix_matching import MatrixMatcher
from repro.core.partitioned import PartitionedMatcher
from repro.core.verify import check_mpi_ordering, check_relaxed, reference_match
from repro.traces.generator import generate_trace

SEEDS = (0, 1, 2, 3, 4)

#: Cap on trace-derived queue depth so the full grid stays tier-1 fast.
TRACE_EVENT_CAP = 120


# -- workload builders --------------------------------------------------------


def _matchable(seed, n, n_ranks, n_tags):
    """Fully-matchable random tuples (the paper's micro-benchmark shape):
    the receive queue is a permutation of the message queue."""
    rng = np.random.default_rng(seed * 7919 + n)
    msgs = EnvelopeBatch.random(n, n_ranks=n_ranks, n_tags=n_tags, rng=rng)
    return msgs, msgs.take(rng.permutation(n))


def _independent(seed, n_msg, n_req, n_ranks):
    """Independently drawn queues: partial matches plus unexpected
    messages / unmatched requests in the given ratio."""
    rng = np.random.default_rng(seed * 104729 + n_msg * 31 + n_req)
    msgs = EnvelopeBatch.random(n_msg, n_ranks=n_ranks, n_tags=8, rng=rng)
    reqs = EnvelopeBatch.random(n_req, n_ranks=n_ranks, n_tags=8, rng=rng)
    return msgs, reqs


def _with_wildcards(seed, n, density, any_source):
    """Fully-matchable base with wildcards sprinkled over the requests.

    ``any_source=False`` keeps ``MPI_ANY_SOURCE`` out (tag wildcards
    only), which is exactly the partitioned matcher's precondition.
    """
    msgs, reqs = _matchable(seed, n, n_ranks=16, n_tags=8)
    rng = np.random.default_rng(seed * 65537 + n)
    src = reqs.src.copy()
    tag = reqs.tag.copy()
    if any_source:
        src[rng.random(n) < density] = ANY_SOURCE
    tag[rng.random(n) < density] = ANY_TAG
    return msgs, EnvelopeBatch(src, tag, reqs.comm)


def _multi_comm(seed, n, n_comms):
    """Fully-matchable tuples spread over several communicators; comm
    must isolate matching (same src/tag on another comm is not a hit)."""
    rng = np.random.default_rng(seed * 6151 + n)
    msgs = EnvelopeBatch(src=rng.integers(0, 8, size=n),
                         tag=rng.integers(0, 4, size=n),
                         comm=rng.integers(0, n_comms, size=n))
    return msgs, msgs.take(rng.permutation(n))


def _refire_stream(seed, pairs, refires):
    """A partitioned-workload shape: ``pairs`` distinct envelope tuples,
    each re-fired ``refires`` times (huge per-pair count over a tiny
    tuple cardinality -- the Benchpark signature).  Requests are a
    permutation of the messages, wildcard-free, so every matcher down
    to the hash path must fully match it."""
    rng = np.random.default_rng(seed * 92821 + pairs * 131 + refires)
    src = rng.integers(0, 16, size=pairs)
    tag = rng.integers(0, 4, size=pairs)
    comm = rng.integers(0, 2, size=pairs)
    n = pairs * refires
    idx = rng.integers(0, pairs, size=n)
    msgs = EnvelopeBatch(src=src[idx], tag=tag[idx], comm=comm[idx])
    return msgs, msgs.take(rng.permutation(n))


def _from_trace(seed, app):
    """Queues lifted from a synthetic DOE proxy-application trace: sends
    become the unexpected-message queue (src = sending rank), receive
    posts become the request queue (wildcards as the app posted them)."""
    trace = generate_trace(app, n_ranks=8, seed=seed)
    sends = trace.sends()[:TRACE_EVENT_CAP]
    posts = trace.recv_posts()[:TRACE_EVENT_CAP]
    msgs = EnvelopeBatch(src=[e.rank for e in sends],
                         tag=[e.tag for e in sends],
                         comm=[e.comm for e in sends])
    reqs = EnvelopeBatch(src=[e.src for e in posts],
                         tag=[e.tag for e in posts],
                         comm=[e.comm for e in posts])
    return msgs, reqs


# -- case grid: 51 shapes -----------------------------------------------------

CASES = {}
for _n in (8, 33, 64, 120):
    for _ranks in (4, 64):
        for _tags in (4, 16):
            CASES[f"matchable-n{_n}-r{_ranks}-t{_tags}"] = (
                lambda s, n=_n, r=_ranks, t=_tags: _matchable(s, n, r, t))
for _nm, _nr in ((60, 60), (100, 40), (40, 100), (96, 24)):
    for _ranks in (8, 32):
        CASES[f"independent-m{_nm}-q{_nr}-r{_ranks}"] = (
            lambda s, m=_nm, q=_nr, r=_ranks: _independent(s, m, q, r))
for _n in (32, 90):
    for _d in (0.25, 0.5):
        CASES[f"wildcard-n{_n}-d{_d}"] = (
            lambda s, n=_n, d=_d: _with_wildcards(s, n, d, any_source=True))
        CASES[f"tagwild-n{_n}-d{_d}"] = (
            lambda s, n=_n, d=_d: _with_wildcards(s, n, d, any_source=False))
for _n in (48, 96):
    for _c in (2, 4):
        CASES[f"multicomm-n{_n}-c{_c}"] = (
            lambda s, n=_n, c=_c: _multi_comm(s, n, c))
for _pairs in (2, 6):
    for _refires in (10, 40):
        CASES[f"refire-p{_pairs}-k{_refires}"] = (
            lambda s, p=_pairs, k=_refires: _refire_stream(s, p, k))
for _app in ("exmatex_lulesh", "exmatex_cmc", "df_amg", "df_minidft",
             "df_minife", "cesar_crystalrouter", "exact_cns",
             "amr_boxlib", "bp_amg2023", "bp_kripke", "bp_laghos"):
    CASES[f"trace-{_app}"] = (lambda s, a=_app: _from_trace(s, a))

assert len(CASES) * len(SEEDS) >= 200, "the issue demands >= 200 cases"


def _workload(case, seed):
    msgs, reqs = CASES[case](seed)
    assert len(msgs) > 0 and len(reqs) > 0, f"degenerate case {case}"
    return msgs, reqs


# -- differential assertions --------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("case", sorted(CASES))
def test_matchers_agree_with_reference_oracle(case, seed):
    msgs, reqs = _workload(case, seed)
    ref = reference_match(msgs, reqs)

    # The CPU list baseline implements the oracle's semantics directly.
    lst = ListMatcher().match(msgs, reqs)
    assert np.array_equal(lst.request_to_message, ref.request_to_message)

    # Matrix matching is fully MPI-compliant on every workload.
    mtx = MatrixMatcher(warps_per_cta=2, window=16).match(msgs, reqs)
    assert np.array_equal(mtx.request_to_message, ref.request_to_message)
    assert mtx.matched_count == ref.matched_count
    check_mpi_ordering(msgs, reqs, mtx)

    # Partitioned matching: identical to the reference whenever its
    # precondition (no MPI_ANY_SOURCE) holds.
    if not np.any(reqs.src == ANY_SOURCE):
        part = PartitionedMatcher(n_queues=4).match(msgs, reqs)
        assert np.array_equal(part.request_to_message,
                              ref.request_to_message)
        check_mpi_ordering(msgs, reqs, part)

    # Hash matching: needs the no-wildcards relaxation; under it the
    # outcome must be relaxed-valid and can never beat the oracle.
    if not reqs.has_wildcards:
        hsh = HashMatcher().match(msgs, reqs)
        check_relaxed(msgs, reqs, hsh)
        assert hsh.matched_count <= ref.matched_count
        if case.startswith(("matchable", "multicomm", "refire")):
            # a perfect matching exists -> unordered matching finds it all
            check_relaxed(msgs, reqs, hsh, require_complete=True)
            assert hsh.matched_count == len(reqs)


@pytest.mark.parametrize("seed", SEEDS)
def test_trace_cases_exercise_wildcards_and_unexpected(seed):
    """Guard the generator-derived corner of the grid: across the app
    models we must actually see wildcard posts and unexpected messages,
    otherwise the trace cases silently degenerate to the random ones."""
    saw_wildcard = saw_unexpected = False
    for case in CASES:
        if not case.startswith("trace-"):
            continue
        msgs, reqs = _workload(case, seed)
        saw_wildcard |= bool(reqs.has_wildcards)
        ref = reference_match(msgs, reqs)
        saw_unexpected |= ref.matched_count < len(msgs)
    assert saw_wildcard, "no proxy-app trace produced a wildcard post"
    assert saw_unexpected, "no proxy-app trace produced unexpected messages"


@pytest.mark.parametrize("seed", SEEDS)
def test_refire_cases_have_tiny_tuple_cardinality(seed):
    """Guard the partitioned corner of the grid: the re-fire shapes must
    actually exhibit the Benchpark signature (messages vastly outnumber
    distinct envelope tuples), or they degenerate to the random cases."""
    for case in CASES:
        if not case.startswith("refire"):
            continue
        msgs, _ = _workload(case, seed)
        tuples = len({(s, t, c) for s, t, c
                      in zip(msgs.src.tolist(), msgs.tag.tolist(),
                             msgs.comm.tolist())})
        assert len(msgs) >= 5 * tuples


@pytest.mark.chaos
@pytest.mark.parametrize("seed", (11, 23))
def test_partitioned_refire_survives_worker_sigkill(seed):
    """Oracle-style differential under faults: drive partitioned
    channels through the cluster serve plane, SIGKILL a worker between
    epochs, and require the recovered re-fire stream to be bit-identical
    to a clean same-seed run (matching replay is exact, so the single
    match per epoch binds the same channel state either way)."""
    from repro.serve import ClusterService, CollectiveBridge, TenantSpec

    def drive(arm):
        cl = ClusterService(n_workers=3, seed=seed, start_method="fork")
        cl.register(TenantSpec(name="mpi", span=4, autotune=False,
                               partitioned=True))
        with cl:
            if arm is not None:
                cl.arm_worker_exit(*arm)
            bridge = CollectiveBridge(cl, "mpi")
            ps_a = bridge.psend_init(0, 1, 6, tag=3)
            pr_a = bridge.precv_init(1, 0, 6, tag=3)
            ps_b = bridge.psend_init(1, 0, 6, tag=4)
            pr_b = bridge.precv_init(0, 1, 6, tag=4)
            out = []
            for epoch in range(4):
                for req in (ps_a, pr_a, ps_b, pr_b):
                    req.start()
                for i in range(6):
                    ps_a.pready(i, (seed, epoch, i))
                    ps_b.pready(i, (seed, epoch, -i))
                ps_a.wait()
                ps_b.wait()
                out.append((pr_a.wait(), pr_b.wait()))
            return out, cl.report(), len(cl.recoveries)

    clean_out, clean_report, clean_recoveries = drive(None)
    assert clean_recoveries == 0
    out, report, recoveries = drive(([1, 2, 1][seed % 3], 1 + seed % 3))
    assert recoveries >= 1, "the armed SIGKILL never fired"
    assert out == clean_out
    assert report == clean_report
