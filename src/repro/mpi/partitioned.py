"""MPI-4 partitioned communication: match once, re-fire many times.

MPI Advance (Bienz et al., PAPERS.md) centers partitioned point-to-point
as the modern answer to high-rate fine-grained traffic: a persistent
channel is *matched once* and its payload then flows as independently
completable partitions, so the per-message matching cost -- the whole
subject of the paper's Table II analysis -- is amortized over arbitrarily
many re-fires.

The model here follows the MPI-4 surface:

* :func:`psend_init` / :func:`precv_init` create persistent partitioned
  requests bound to a ``(src, dst, tag, comm)`` envelope and a partition
  count.  Init performs no communication.
* ``start()`` activates one *epoch*.  The send side emits exactly **one**
  binding envelope through the ordinary matching path (``isend`` on the
  user tag); the receive side posts exactly **one** receive.  That single
  match -- countable in ``Endpoint.matches_total`` -- establishes the
  epoch's channel binding.
* ``pready(i)`` (send side) marks partition ``i`` ready and ships it as a
  *partition frame*: a :class:`~repro.mpi.network.MessageDescriptor` with
  ``part=(channel, epoch, i)`` sent through :class:`~repro.mpi.network.
  GASNetwork` like any other frame.  It is sequenced per pair, charged
  wire time, dropped/duplicated/delayed/corrupted by an installed
  :class:`~repro.mpi.faults.FaultPlan`, and recovered by the reliability
  layer -- but on delivery it bypasses the UMQ and lands directly in the
  channel's pre-registered partition buffer (the receive buffer is known
  at init time; that is the point of the API).
* ``parrived(i)`` (receive side) reports per-partition completion;
  ``wait()`` completes the epoch and re-arms the request for the next
  ``start()``.

Frames that arrive before their epoch's binding has matched (sender ran
ahead, or reordering faults) are *staged* by the cluster-wide
:class:`PartitionRouter` and drained the moment the binding lands, so
partitioned traffic is robust to any interleaving the transport can
produce.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from .communicator import Communicator, check_app_tag
from .datatypes import clone_payload, payload_nbytes
from .network import MessageDescriptor

if TYPE_CHECKING:  # pragma: no cover
    from .process import Cluster

__all__ = ["PartitionRouter", "PsendRequest", "PrecvRequest",
           "psend_init", "precv_init"]


class PartitionRouter:
    """Cluster-wide landing plane for partition frames.

    Owns the channel-id space (cluster-monotonic, like communicator ids)
    and the per-``(channel, epoch)`` landing state.  Delivery is
    unconditional: partition buffers are pre-registered at init time, so
    partition frames are never subject to ring backpressure -- the
    receiver guaranteed the memory when it created the request.
    """

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self._next_channel = 1
        #: frames that arrived before their epoch's binding matched:
        #: ``(channel, epoch) -> {partition index: payload}``
        self._staged: dict[tuple[int, int], dict[int, Any]] = {}
        #: receivers whose binding has matched, by ``(channel, epoch)``
        self._bound: dict[tuple[int, int], "PrecvRequest"] = {}
        self.frames_total = 0
        self.frames_staged = 0
        self.frames_stale = 0

    def alloc_channel(self) -> int:
        """A fresh channel id (never reused within a cluster)."""
        cid = self._next_channel
        self._next_channel = cid + 1
        return cid

    def deliver(self, desc: MessageDescriptor) -> bool:
        """Land one partition frame (called from ``Cluster._deliver``).

        Exactly-once per-pair ordering is the reliability layer's job;
        by the time a frame reaches the router it is authoritative, so a
        re-landing of the same index (possible only on the fault-free
        wire, where the application itself cannot re-fire an index
        within an epoch) is a plain overwrite.
        """
        channel, epoch, index = desc.part
        self.frames_total += 1
        rx = self._bound.get((channel, epoch))
        if rx is not None:
            rx._land(index, desc.payload)
            return True
        self.frames_staged += 1
        self._staged.setdefault((channel, epoch), {})[index] = desc.payload
        return True

    def bind(self, channel: int, epoch: int, rx: "PrecvRequest") -> None:
        """Attach a receiver whose binding envelope just matched; drain
        any frames that raced ahead of the match."""
        self._bound[(channel, epoch)] = rx
        staged = self._staged.pop((channel, epoch), None)
        if staged:
            for index in sorted(staged):
                rx._land(index, staged[index])

    def release(self, channel: int, epoch: int) -> None:
        """Retire a completed epoch; any stale staging for earlier
        epochs of the channel is dropped (late duplicates of a finished
        transfer have no receiver and never will)."""
        self._bound.pop((channel, epoch), None)
        for key in [k for k in self._staged
                    if k[0] == channel and k[1] <= epoch]:
            self.frames_stale += len(self._staged.pop(key))

    def stats(self) -> dict:
        """Router counters (for stall diagnosis and tests)."""
        return {"frames_total": self.frames_total,
                "frames_staged": self.frames_staged,
                "frames_stale": self.frames_stale,
                "channels": self._next_channel - 1,
                "bound": len(self._bound),
                "staged_pending": sum(len(v)
                                      for v in self._staged.values())}


def _binding_payload(channel: int, epoch: int, partitions: int,
                     bytes_per_partition: int) -> dict:
    return {"part_channel": channel, "epoch": epoch,
            "partitions": partitions,
            "bytes_per_partition": bytes_per_partition}


class _PartitionedBase:
    """State shared by both sides of a partitioned request."""

    def __init__(self, comm: Communicator, partitions: int,
                 tag: int) -> None:
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        check_app_tag(tag)
        self.comm = comm
        self.partitions = partitions
        self.tag = tag
        self.epoch = 0
        self._active = False
        self.router = comm.cluster.partitioned

    @property
    def active(self) -> bool:
        """Is an epoch in flight (``start()`` without ``wait()``)?"""
        return self._active

    def _require_active(self, op: str) -> None:
        if not self._active:
            raise RuntimeError(f"{op} on an inactive partitioned request; "
                               "call start() first")

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self.partitions:
            raise IndexError(f"partition {i} out of range "
                             f"(0..{self.partitions - 1})")


class PsendRequest(_PartitionedBase):
    """Send side of a persistent partitioned channel (``MPI_Psend_init``).

    ``src``/``dst`` are communicator-local ranks.  One binding envelope
    per ``start()``; one partition frame per ``pready``.
    """

    def __init__(self, comm: Communicator, src: int, dst: int,
                 partitions: int, tag: int = 0,
                 bytes_per_partition: int = 8) -> None:
        super().__init__(comm, partitions, tag)
        if bytes_per_partition < 0:
            raise ValueError("bytes_per_partition cannot be negative")
        self.src = src
        self.dst = dst
        self.bytes_per_partition = bytes_per_partition
        self.channel = self.router.alloc_channel()
        self._ready = np.zeros(partitions, dtype=bool)

    def start(self) -> "PsendRequest":
        """Activate one epoch: all partitions become not-ready and the
        binding envelope is sent -- the epoch's *single* matched message,
        regardless of how many partitions later fire."""
        if self._active:
            raise RuntimeError("start() on an already-active partitioned "
                               "send; wait() the epoch first")
        self.epoch += 1
        self._active = True
        self._ready[:] = False
        self.comm.isend(self.src, self.dst,
                        _binding_payload(self.channel, self.epoch,
                                         self.partitions,
                                         self.bytes_per_partition),
                        self.tag)
        return self

    def pready(self, i: int, payload: Any = None) -> None:
        """Fire partition ``i``: ship its frame through the transport.

        The frame carries the channel identity instead of entering
        matching; it is still sequenced, fault-injected, recovered, and
        charged wire time like any eager message of
        ``bytes_per_partition`` bytes (or the payload's size if larger).
        """
        self._require_active("pready")
        self._check_index(i)
        if self._ready[i]:
            raise RuntimeError(f"partition {i} already marked ready this "
                               "epoch")
        self._ready[i] = True
        nbytes = max(self.bytes_per_partition, payload_nbytes(payload))
        desc = MessageDescriptor(
            src=self.comm.global_rank(self.src),
            dst=self.comm.global_rank(self.dst),
            tag=self.tag, comm=self.comm.comm_id,
            nbytes=nbytes, eager=True,
            payload=clone_payload(payload),
            part=(self.channel, self.epoch, i))
        self.comm.cluster.network.send(desc)

    def pready_range(self, lo: int, hi: int,
                     payloads: Any = None) -> None:
        """Fire partitions ``lo..hi-1`` (``MPI_Pready_range``)."""
        for i in range(lo, hi):
            self.pready(i, None if payloads is None else payloads[i - lo])

    def test(self) -> bool:
        """Send-side epoch completion: every partition fired."""
        self._require_active("test")
        self.comm.cluster.progress()
        return bool(self._ready.all())

    def wait(self, max_rounds: int = 10_000) -> None:
        """Complete the epoch and re-arm for the next ``start()``.

        All partitions must have been fired (MPI requires every
        partition be made ready before the operation can complete).
        """
        self._require_active("wait")
        if not self._ready.all():
            missing = np.flatnonzero(~self._ready)
            raise RuntimeError(
                f"wait() with partitions {missing.tolist()} never "
                "pready'd; every partition must fire each epoch")
        # pump until the transport has nothing left in flight for us --
        # under faults, frames may still be in retransmission
        for _ in range(max_rounds):
            net = self.comm.cluster.network
            self.comm.cluster.progress()
            if net.held_messages == 0 and not net.reliability_busy:
                break
        self._active = False


class PrecvRequest(_PartitionedBase):
    """Receive side of a persistent partitioned channel
    (``MPI_Precv_init``).

    ``dst`` is the receiving local rank, ``src`` the sending local rank
    (no wildcards: the channel is a point-to-point contract, which is
    exactly what lets its frames skip matching).
    """

    def __init__(self, comm: Communicator, dst: int, src: int,
                 partitions: int, tag: int = 0) -> None:
        super().__init__(comm, partitions, tag)
        self.dst = dst
        self.src = src
        self._arrived = np.zeros(partitions, dtype=bool)
        self._payloads: list[Any] = [None] * partitions
        self._binding: dict | None = None
        self._binding_req = None
        self._channel: int | None = None

    def start(self) -> "PrecvRequest":
        """Activate one epoch: post the *single* receive whose match
        binds the channel."""
        if self._active:
            raise RuntimeError("start() on an already-active partitioned "
                               "receive; wait() the epoch first")
        self.epoch += 1
        self._active = True
        self._arrived[:] = False
        self._payloads = [None] * self.partitions
        self._binding = None
        self._binding_req = self.comm.irecv(self.dst, self.src, self.tag)
        return self

    # -- router callback ---------------------------------------------------------

    def _land(self, index: int, payload: Any) -> None:
        if 0 <= index < self.partitions:
            self._arrived[index] = True
            self._payloads[index] = payload

    # -- completion --------------------------------------------------------------

    def _poll_binding(self) -> None:
        """Attach to the channel once the binding envelope has matched."""
        if self._binding is not None or self._binding_req is None:
            return
        if not self._binding_req.test():
            return
        binding = self._binding_req.wait()
        if (not isinstance(binding, dict)
                or "part_channel" not in binding):
            raise RuntimeError(
                "partitioned receive matched a non-partitioned send on "
                f"tag {self.tag}; the channel tag must not be shared "
                "with ordinary traffic")
        if binding["partitions"] != self.partitions:
            raise ValueError(
                f"partition count mismatch: sender declared "
                f"{binding['partitions']}, receiver {self.partitions}")
        if binding["epoch"] != self.epoch:
            raise RuntimeError(
                f"epoch skew on partitioned channel "
                f"{binding['part_channel']}: sender epoch "
                f"{binding['epoch']}, receiver epoch {self.epoch} -- "
                "both sides must start() each epoch exactly once")
        self._binding = binding
        self._channel = binding["part_channel"]
        self.router.bind(self._channel, self.epoch, self)

    def parrived(self, i: int) -> bool:
        """Has partition ``i`` landed this epoch?  (``MPI_Parrived``;
        drives one progress pass like ``MPI_Test`` would.)"""
        self._require_active("parrived")
        self._check_index(i)
        self.comm.cluster.progress()
        self._poll_binding()
        return bool(self._arrived[i])

    def test(self) -> bool:
        """Epoch completion: binding matched and every partition landed."""
        self._require_active("test")
        self.comm.cluster.progress()
        self._poll_binding()
        return self._binding is not None and bool(self._arrived.all())

    def wait(self, max_rounds: int = 10_000) -> list[Any]:
        """Block until the epoch completes; returns the partition
        payloads in index order and re-arms for the next ``start()``."""
        self._require_active("wait")
        for _ in range(max_rounds):
            if self.test():
                break
        else:
            missing = np.flatnonzero(~self._arrived).tolist()
            raise RuntimeError(
                f"partitioned receive did not complete after {max_rounds} "
                f"progress rounds (binding "
                f"{'matched' if self._binding else 'unmatched'}, missing "
                f"partitions {missing[:8]}): likely deadlock")
        payloads = list(self._payloads)
        self.router.release(self._channel, self.epoch)
        self._active = False
        self._binding_req = None
        return payloads


def psend_init(comm: Communicator, src: int, dst: int, partitions: int,
               tag: int = 0, bytes_per_partition: int = 8) -> PsendRequest:
    """Create a persistent partitioned send (``MPI_Psend_init``).

    No communication happens until ``start()``.
    """
    return PsendRequest(comm, src, dst, partitions, tag=tag,
                        bytes_per_partition=bytes_per_partition)


def precv_init(comm: Communicator, dst: int, src: int, partitions: int,
               tag: int = 0) -> PrecvRequest:
    """Create a persistent partitioned receive (``MPI_Precv_init``)."""
    return PrecvRequest(comm, dst, src, partitions, tag=tag)
