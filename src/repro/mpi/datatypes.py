"""Datatype descriptors for the message-passing layer.

The matching study only needs envelope metadata, but a usable
send/recv API has to carry payloads.  Fast paths exist for raw ``bytes``
and NumPy arrays; any other picklable object is sized and snapshotted via
pickle (the mpi4py convention).  :func:`payload_nbytes` sizes payloads
for the eager/rendezvous protocol decision (Section II-B: small messages
are buffered, large messages are matched first and then transferred
directly).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["payload_nbytes", "clone_payload", "EAGER_LIMIT_BYTES", "Protocol"]

#: Messages at or below this size use the eager protocol (payload travels
#: with the envelope and may be buffered as unexpected); larger messages
#: use rendezvous (payload transferred after the match).  8 KiB mirrors
#: common MPI eager limits.
EAGER_LIMIT_BYTES = 8 * 1024


@dataclass(frozen=True)
class Protocol:
    """Protocol decision for one message."""

    eager: bool
    nbytes: int

    @classmethod
    def for_payload(cls, payload: Any) -> "Protocol":
        """Choose eager vs rendezvous by payload size."""
        n = payload_nbytes(payload)
        return cls(eager=n <= EAGER_LIMIT_BYTES, nbytes=n)


def payload_nbytes(payload: Any) -> int:
    """Size of a payload in bytes (0 for ``None``)."""
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (int, float, bool)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    return len(pickle.dumps(payload))


def clone_payload(payload: Any) -> Any:
    """Snapshot a payload at send time (MPI send buffers are reusable
    immediately after the call returns for eager sends)."""
    if payload is None or isinstance(payload, (bytes, int, float, bool, str)):
        return payload
    if isinstance(payload, (bytearray, memoryview)):
        return bytes(payload)
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return pickle.loads(pickle.dumps(payload))
