"""Host-side throughput regression harness.

Every other benchmark in this repository reports *modeled* GPU rates.
This module times the **simulator itself**: wall-clock matches/s of the
matching fast paths on the host, so that optimization PRs have a measured
perf trajectory instead of anecdotes (the Caliper/Benchpark lesson from
PAPERS.md).

``run_suite`` sweeps the matrix, partitioned, and hash matchers over the
paper-scale queue depths and ``append_entry`` records the results in
``BENCH_host_perf.json`` at the repository root.  Each entry is labeled
(e.g. ``"baseline"``, ``"post-PR1"``), so successive PRs can append and
compare: ``speedup`` computes the ratio between two labeled entries.

Methodology: best-of-``repeats`` wall time of ``matcher.match()`` on the
paper's fully-matchable random workload (:func:`matching_workload`), rate
= matched count / host seconds.  Workloads are built outside the timed
region; each repeat uses a fresh matcher so no cached state leaks in.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import MISSING, asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..core.hash_matching import HashMatcher
from ..core.matrix_matching import MatrixMatcher
from ..core.partitioned import PartitionedMatcher
from .harness import matching_workload

__all__ = [
    "DEFAULT_SIZES",
    "QUICK_SIZES",
    "MATCHER_FACTORIES",
    "HostPerfRecord",
    "ServePerfRecord",
    "append_entry",
    "default_report_path",
    "entry_rates",
    "load_report",
    "regression_failures",
    "run_suite",
    "serve_entry_rates",
    "serve_regression_failures",
    "serve_report_path",
    "speedup",
    "time_match",
    "validate_serve_entry",
]

#: Queue depths of the full sweep: the paper's Figure 4-6 sweeps reach
#: 10^5 envelopes; 64k is the deep-queue point the 5x host-speedup gate
#: is measured at.
DEFAULT_SIZES = (1_000, 8_000, 64_000)

#: Depths for CI smoke runs.
QUICK_SIZES = (1_000, 8_000)

#: Matchers under the regression gate.  Fresh instance per repeat; each
#: factory optionally takes an observability handle (``--trace-out``).
MATCHER_FACTORIES: dict[str, Callable[..., object]] = {
    "matrix": lambda obs=None: MatrixMatcher(obs=obs),
    "partitioned": lambda obs=None: PartitionedMatcher(n_queues=4, obs=obs),
    "hash": lambda obs=None: HashMatcher(obs=obs),
}


@dataclass(frozen=True)
class HostPerfRecord:
    """One (matcher, queue depth) timing."""

    matcher: str
    n: int
    seconds: float
    matched: int
    matches_per_second: float
    repeats: int


def default_repeats(n: int) -> int:
    """Best-of-3 where a repeat is cheap, single-shot at depth."""
    return 3 if n <= 8_000 else 1


def time_match(name: str, factory: Callable[..., object], n: int,
               repeats: int | None = None, seed: int = 0,
               obs=None) -> HostPerfRecord:
    """Time ``factory().match`` on ``matching_workload(n)``.

    An observability handle is forwarded to the matcher; note that a
    traced repeat measures the instrumented path's host time.
    """
    msgs, reqs = matching_workload(n, seed=seed)
    repeats = default_repeats(n) if repeats is None else repeats
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    matched = 0
    for _ in range(repeats):
        matcher = factory(obs=obs) if obs is not None else factory()
        t0 = time.perf_counter()
        outcome = matcher.match(msgs, reqs)
        best = min(best, time.perf_counter() - t0)
        matched = outcome.matched_count
    return HostPerfRecord(matcher=name, n=n, seconds=best, matched=matched,
                          matches_per_second=matched / best, repeats=repeats)


def run_suite(sizes: Sequence[int] = DEFAULT_SIZES,
              matchers: Iterable[str] = tuple(MATCHER_FACTORIES),
              repeats: int | None = None,
              progress: Callable[[HostPerfRecord], None] | None = None,
              obs=None) -> list[HostPerfRecord]:
    """Full sweep: every selected matcher at every size."""
    records = []
    for name in matchers:
        factory = MATCHER_FACTORIES[name]
        for n in sizes:
            rec = time_match(name, factory, n, repeats=repeats, obs=obs)
            records.append(rec)
            if progress is not None:
                progress(rec)
    return records


# -- report file ----------------------------------------------------------------


def default_report_path() -> Path:
    """``BENCH_host_perf.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "BENCH_host_perf.json"


def load_report(path: Path | None = None) -> dict:
    """Read the report (``{"entries": []}`` when absent)."""
    path = default_report_path() if path is None else Path(path)
    if not path.exists():
        return {"entries": []}
    with open(path) as f:
        report = json.load(f)
    if "entries" not in report:
        raise ValueError(f"{path} is not a host-perf report")
    return report


def append_entry(records: Sequence[HostPerfRecord], label: str,
                 path: Path | None = None) -> dict:
    """Append one labeled entry to the report and rewrite it."""
    path = default_report_path() if path is None else Path(path)
    report = load_report(path)
    report["entries"].append({
        "label": label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "records": [asdict(r) for r in records],
    })
    with open(path, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    return report


# -- serve-layer report ---------------------------------------------------------


@dataclass(frozen=True)
class ServePerfRecord:
    """One serve-bench workload run (``benchmarks/bench_serve.py``).

    ``matches_per_second`` is sustained *host* throughput (matched pairs
    over wall seconds of the whole serve run, submission loop + drain);
    the latency percentiles are in *virtual* seconds, so they are
    deterministic for a given workload and seed.
    """

    workload: str
    tenants: int
    n_envelopes: int
    submitted: int
    accepted: int
    shed_retryable: int
    shed_overloaded: int
    flushes: int
    matched: int
    retunes: int
    seconds: float
    matches_per_second: float
    latency_p50_vt: float | None
    latency_p99_vt: float | None
    seed: int
    #: wall-seconds per pipeline stage (loadgen/admission/batching/
    #: match/result) from a :class:`~repro.serve.stages.StageClock`;
    #: optional so entries recorded before the breakdown stay valid.
    stage_seconds: dict | None = None
    #: wall-seconds spent in crash recovery (checkpoint restore +
    #: reconciliation + journal replay) when the run was kill-injected;
    #: ``None`` for normal runs and entries predating fault tolerance.
    recovery_seconds: float | None = None
    #: end-of-run carried-over envelopes across session tenants
    #: (UMQ + PRQ); ``None`` for entries predating sessions.
    carryover_depth: int | None = None
    #: worker-process count for cluster runs (``benchmarks/
    #: bench_cluster.py``); ``None`` for in-process entries.
    procs: int | None = None
    #: host cores available to the run (``os.cpu_count()``), recorded so
    #: per-core rates stay interpretable on oversubscribed sweeps.
    cores: int | None = None
    #: sustained matches/s divided by min(procs, cores) -- the per-core
    #: throughput the cluster scaling gate tracks.
    matches_per_core: float | None = None
    #: span-derived aggregate rate: matched / max per-worker busy
    #: seconds.  On a host with cores >= procs (workers genuinely
    #: parallel) this is the achievable wall rate; recording it next to
    #: the measured wall rate keeps single-core CI sweeps honest instead
    #: of pretending wall-clock speedup on oversubscribed hosts.
    matches_per_second_span: float | None = None
    #: per-worker windowed message volume at the end of the run (the
    #: shard load signal), worker order.
    shard_volumes: list | None = None
    #: max/mean of ``shard_volumes`` (1.0 = perfectly balanced).
    imbalance: float | None = None
    #: offered load in requests/s of virtual time (the open-loop
    #: workload's arrival rate), for p99-vs-offered-load curves.
    offered_rps: float | None = None
    #: spanning-tenant rank count for fabric runs
    #: (``benchmarks/bench_fabric.py``); ``None`` for non-fabric entries.
    span: int | None = None
    #: inter-shard messages carried per combined pair batch (the
    #: message-combining figure of merit; >= 1.0 when anything crossed
    #: the wire).
    combine_ratio: float | None = None
    #: combined (src shard, dst shard) batches sent over the run.
    pair_batches: int | None = None
    #: inter-shard messages carried by those batches.
    fabric_messages: int | None = None
    #: per ordered shard pair batch counts, keyed ``"src->dst"``.
    per_pair_batches: dict | None = None
    #: simulated wire seconds charged across all supersteps.
    wire_virtual_seconds: float | None = None
    #: fabric flush boundaries driven over the run.
    supersteps: int | None = None
    #: partitions per channel epoch for partitioned-channel runs
    #: (``benchmarks/bench_partitioned.py``); ``None`` otherwise.
    partitions: int | None = None
    #: partition re-fires amortized per matched binding envelope
    #: (= partitions, when every epoch completed).
    refires_per_match: int | None = None
    #: partition transfers/s sustained by the partitioned stream.
    partitioned_rate: float | None = None
    #: transfers/s of the equivalent non-partitioned stream (every
    #: transfer individually matched).
    plain_rate: float | None = None
    #: ``partitioned_rate / plain_rate`` -- the match-once/fire-many
    #: amortization factor (the bench's acceptance gate is >= 5x).
    amortization_ratio: float | None = None


#: Every field a serve record must carry (the ``--smoke`` schema check).
#: Defaulted fields are optional -- entries recorded before they were
#: introduced must keep validating.
SERVE_RECORD_FIELDS = tuple(
    name for name, f in ServePerfRecord.__dataclass_fields__.items()
    if f.default is MISSING)


def serve_report_path() -> Path:
    """``BENCH_serve.json`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "BENCH_serve.json"


def serve_entry_rates(entry: dict) -> dict[str, float]:
    """``{workload: matches_per_second}`` for one serve report entry."""
    return {r["workload"]: r["matches_per_second"]
            for r in entry["records"]}


def validate_serve_entry(entry: dict) -> list[str]:
    """Schema problems in one serve report entry (empty list = valid)."""
    problems = []
    for key in ("label", "timestamp", "records"):
        if key not in entry:
            problems.append(f"entry missing {key!r}")
    for i, rec in enumerate(entry.get("records", [])):
        for field_name in SERVE_RECORD_FIELDS:
            if field_name not in rec:
                problems.append(f"record {i} missing {field_name!r}")
        if rec.get("matched", 0) < 0 or rec.get("seconds", 0) <= 0:
            problems.append(f"record {i} has non-positive timing")
        recovery = rec.get("recovery_seconds")
        if recovery is not None and recovery < 0:
            problems.append(f"record {i} has negative recovery_seconds")
        carryover = rec.get("carryover_depth")
        if carryover is not None and carryover < 0:
            problems.append(f"record {i} has negative carryover_depth")
        procs = rec.get("procs")
        if procs is not None and procs < 1:
            problems.append(f"record {i} has non-positive procs")
        for rate_field in ("matches_per_core", "matches_per_second_span",
                           "offered_rps"):
            rate = rec.get(rate_field)
            if rate is not None and rate < 0:
                problems.append(f"record {i} has negative {rate_field}")
        volumes = rec.get("shard_volumes")
        if volumes is not None:
            if procs is not None and len(volumes) != procs:
                problems.append(f"record {i} shard_volumes/procs mismatch")
            if any(v < 0 for v in volumes):
                problems.append(f"record {i} has negative shard volume")
        imbalance = rec.get("imbalance")
        if imbalance is not None and imbalance < 1.0:
            problems.append(f"record {i} has imbalance below 1.0 "
                            f"(max/mean cannot undershoot the mean)")
        combine = rec.get("combine_ratio")
        if combine is not None and combine < 1.0:
            problems.append(f"record {i} has combine_ratio below 1.0 "
                            f"(a pair batch carries at least one message)")
        for count_field in ("span", "pair_batches", "fabric_messages",
                            "supersteps"):
            count = rec.get(count_field)
            if count is not None and count < 0:
                problems.append(f"record {i} has negative {count_field}")
        wire = rec.get("wire_virtual_seconds")
        if wire is not None and wire < 0:
            problems.append(f"record {i} has negative wire_virtual_seconds")
        for count_field in ("partitions", "refires_per_match"):
            count = rec.get(count_field)
            if count is not None and count < 1:
                problems.append(f"record {i} has non-positive "
                                f"{count_field}")
        for rate_field in ("partitioned_rate", "plain_rate"):
            rate = rec.get(rate_field)
            if rate is not None and rate <= 0:
                problems.append(f"record {i} has non-positive "
                                f"{rate_field}")
        amort = rec.get("amortization_ratio")
        if amort is not None:
            if amort <= 0:
                problems.append(f"record {i} has non-positive "
                                f"amortization_ratio")
            p, q = rec.get("partitioned_rate"), rec.get("plain_rate")
            if (p is not None and q is not None
                    and abs(amort - p / q) > 1e-6 * max(1.0, amort)):
                problems.append(f"record {i} amortization_ratio does not "
                                f"equal partitioned_rate / plain_rate")
        per_pair = rec.get("per_pair_batches")
        if per_pair is not None:
            if any(v < 0 for v in per_pair.values()):
                problems.append(f"record {i} has negative per-pair count")
            pair_total = rec.get("pair_batches")
            if (pair_total is not None
                    and sum(per_pair.values()) != pair_total):
                problems.append(f"record {i} per_pair_batches does not "
                                f"sum to pair_batches")
    if not entry.get("records"):
        problems.append("entry has no records")
    return problems


def serve_regression_failures(report: dict, base_label: str,
                              new_label: str, min_ratio: float = 0.6,
                              ) -> list[tuple[str, float]]:
    """Serve workloads where ``new`` regressed below ``min_ratio`` x base.

    The serve-layer analogue of :func:`regression_failures`: compares
    sustained matches/s per workload between two labeled
    ``BENCH_serve.json`` entries and returns failing
    ``(workload, ratio)`` pairs, worst first.  Same 0.6 default: host
    timing is noisy, but a near-2x slowdown is a real regression.
    """
    if not 0 < min_ratio <= 1.0:
        raise ValueError("min_ratio must be in (0, 1]")
    base = serve_entry_rates(_entry(report, base_label))
    new = serve_entry_rates(_entry(report, new_label))
    failures = []
    for workload in sorted(base.keys() & new.keys()):
        ratio = new[workload] / base[workload]
        if ratio < min_ratio:
            failures.append((workload, ratio))
    failures.sort(key=lambda f: f[1])
    return failures


def entry_rates(entry: dict) -> dict[tuple[str, int], float]:
    """``{(matcher, n): matches_per_second}`` for one report entry."""
    return {(r["matcher"], r["n"]): r["matches_per_second"]
            for r in entry["records"]}


def _entry(report: dict, label: str) -> dict:
    for entry in reversed(report["entries"]):
        if entry["label"] == label:
            return entry
    raise KeyError(f"no entry labeled {label!r}")


def speedup(report: dict, matcher: str, n: int, base_label: str,
            new_label: str) -> float:
    """Host-throughput ratio of two labeled entries at one sweep point."""
    base = entry_rates(_entry(report, base_label))[(matcher, n)]
    new = entry_rates(_entry(report, new_label))[(matcher, n)]
    return new / base


def regression_failures(report: dict, base_label: str, new_label: str,
                        min_ratio: float = 0.6,
                        ) -> list[tuple[str, int, float]]:
    """Sweep points where ``new`` regressed below ``min_ratio`` x base.

    Compares every (matcher, n) present in both labeled entries and
    returns the failing ``(matcher, n, ratio)`` triples, sorted worst
    first.  The 0.6 default tolerates host-timing noise while flagging
    anything close to a 2x slowdown; an unchanged run passes with an
    empty list.
    """
    if not 0 < min_ratio <= 1.0:
        raise ValueError("min_ratio must be in (0, 1]")
    base = entry_rates(_entry(report, base_label))
    new = entry_rates(_entry(report, new_label))
    failures = []
    for key in sorted(base.keys() & new.keys()):
        ratio = new[key] / base[key]
        if ratio < min_ratio:
            failures.append((key[0], key[1], ratio))
    failures.sort(key=lambda f: f[2])
    return failures
