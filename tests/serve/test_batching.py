"""Batch accumulator: watermarks, epochs, and edge-case flushes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.envelope import EnvelopeBatch
from repro.serve.batching import BatchAccumulator, BatchPolicy, concat_batches
from repro.serve.messages import ServeRequest


def _request(seq: int, vt: float, n_msgs: int = 2,
             n_reqs: int = 2) -> ServeRequest:
    msgs = EnvelopeBatch(src=list(range(n_msgs)), tag=[seq] * n_msgs)
    reqs = EnvelopeBatch(src=list(range(n_reqs)), tag=[seq] * n_reqs)
    return ServeRequest(tenant="t", seq=seq, arrival_vt=vt,
                        messages=msgs, requests=reqs)


class TestPolicy:
    def test_defaults_valid(self):
        pol = BatchPolicy()
        assert pol.max_envelopes >= 1 and pol.max_delay_vt > 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_envelopes=0)
        with pytest.raises(ValueError):
            BatchPolicy(max_delay_vt=0.0)


class TestConcat:
    def test_empty_input_yields_empty_batch(self):
        out = concat_batches([])
        assert len(out) == 0

    def test_skips_empty_members_preserves_order(self):
        a = EnvelopeBatch(src=[1, 2], tag=[10, 20])
        b = EnvelopeBatch.empty()
        c = EnvelopeBatch(src=[3], tag=[30])
        out = concat_batches([a, b, c])
        assert out.src.tolist() == [1, 2, 3]
        assert out.tag.tolist() == [10, 20, 30]

    def test_single_member_passthrough(self):
        a = EnvelopeBatch(src=[5], tag=[7])
        out = concat_batches([EnvelopeBatch.empty(), a])
        assert out is a


class TestAccumulator:
    def test_size_watermark(self):
        acc = BatchAccumulator(BatchPolicy(max_envelopes=8))
        acc.admit(_request(0, 0.0))     # 4 envelopes
        assert not acc.size_ready()
        acc.admit(_request(1, 0.0))     # 8 envelopes
        assert acc.size_ready()
        assert len(acc) == 8

    def test_time_watermark_from_first_admit(self):
        acc = BatchAccumulator(BatchPolicy(max_delay_vt=0.5))
        assert acc.deadline_vt is None
        acc.admit(_request(0, 1.0))
        acc.admit(_request(1, 1.3))     # later admit does not move deadline
        assert acc.deadline_vt == pytest.approx(1.5)
        assert not acc.time_ready(1.4)
        assert acc.time_ready(1.5)

    def test_flush_concatenates_in_admission_order(self):
        acc = BatchAccumulator()
        acc.admit(_request(0, 0.0))
        acc.admit(_request(1, 0.1))
        messages, requests, covered = acc.flush()
        assert [r.seq for r in covered] == [0, 1]
        assert messages.tag.tolist() == [0, 0, 1, 1]
        assert requests.tag.tolist() == [0, 0, 1, 1]
        assert len(acc) == 0 and acc.deadline_vt is None

    def test_empty_flush_returns_valid_zero_length_batches(self):
        acc = BatchAccumulator()
        messages, requests, covered = acc.flush()
        assert covered == []
        assert len(messages) == 0 and len(requests) == 0
        assert isinstance(messages.src, np.ndarray)

    def test_single_envelope_batch_is_legal(self):
        acc = BatchAccumulator(BatchPolicy(max_envelopes=1))
        acc.admit(_request(0, 0.0, n_msgs=1, n_reqs=0))
        assert acc.size_ready()
        messages, requests, covered = acc.flush()
        assert len(messages) == 1 and len(requests) == 0
        assert len(covered) == 1

    def test_epoch_increments_on_every_flush(self):
        acc = BatchAccumulator()
        assert acc.epoch == 0
        acc.flush()
        acc.admit(_request(0, 0.0))
        acc.flush()
        assert acc.epoch == 2
