"""Probe, sendrecv, request aggregation, persistent ops, new collectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.envelope import ANY_SOURCE, ANY_TAG
import repro.mpi as mpi
from repro.mpi import (Cluster, Communicator, PersistentRecv, PersistentSend,
                       allgather, allreduce, scan, scatter, waitall, waitany)


class TestProbe:
    def test_iprobe_miss(self):
        c = Cluster(2)
        assert c.rank(0).iprobe(src=1, tag=0) is None

    def test_iprobe_hit_without_consuming(self):
        c = Cluster(2)
        c.rank(0).send(1, b"abc", tag=5)
        st1 = c.rank(1).iprobe(src=0, tag=5)
        st2 = c.rank(1).iprobe(src=0, tag=5)
        assert st1.nbytes == st2.nbytes == 3
        assert c.rank(1).endpoint.umq_depth == 1  # still queued
        assert c.rank(1).recv(src=0, tag=5) == b"abc"

    def test_iprobe_respects_envelope(self):
        c = Cluster(3)
        c.rank(0).send(2, b"x", tag=1)
        assert c.rank(2).iprobe(src=1, tag=1) is None
        assert c.rank(2).iprobe(src=0, tag=9) is None
        assert c.rank(2).iprobe(src=0, tag=1) is not None

    def test_iprobe_wildcards(self):
        c = Cluster(3)
        c.rank(1).send(2, b"y", tag=42)
        st = c.rank(2).iprobe(src=ANY_SOURCE, tag=ANY_TAG)
        assert (st.source, st.tag) == (1, 42)

    def test_iprobe_earliest_message(self):
        c = Cluster(2)
        c.rank(0).send(1, b"first", tag=1)
        c.rank(0).send(1, b"second", tag=2)
        st = c.rank(1).iprobe(src=0, tag=ANY_TAG)
        assert st.tag == 1

    def test_blocking_probe_no_match_returns_none(self):
        """A transient empty queue is a pollable no-match, not an error."""
        c = Cluster(2)
        assert c.rank(0).probe(src=1, tag=0, max_rounds=5) is None
        # the caller can poll: a later send is then observed
        c.rank(1).send(0, b"now", tag=0)
        st = c.rank(0).probe(src=1, tag=0)
        assert st is not None and st.tag == 0


class TestSendrecv:
    def test_ring_exchange(self):
        c = Cluster(5)
        reqs = [c.rank(r).isendrecv((r + 1) % 5, r * 100, (r - 1) % 5,
                                    send_tag=3) for r in range(5)]
        vals = [req.wait() for req in reqs]
        assert vals == [((r - 1) % 5) * 100 for r in range(5)]

    def test_blocking_sendrecv_with_ready_partner(self):
        c = Cluster(2)
        c.rank(1).isend(0, b"from1", tag=7)
        got = c.rank(0).sendrecv(1, b"from0", 1, send_tag=7)
        assert got == b"from1"
        assert c.rank(1).recv(src=0, tag=7) == b"from0"

    def test_distinct_send_recv_tags(self):
        c = Cluster(2)
        c.rank(1).isend(0, b"r", tag=9)
        got = c.rank(0).sendrecv(1, b"s", 1, send_tag=4, recv_tag=9)
        assert got == b"r"
        assert c.rank(1).recv(src=0, tag=4) == b"s"


class TestRequestOps:
    def test_waitall(self):
        c = Cluster(2)
        reqs = [c.rank(1).irecv(src=0, tag=t) for t in range(8)]
        for t in range(8):
            c.rank(0).isend(1, t, tag=t)
        assert waitall(reqs) == list(range(8))

    def test_waitany_picks_completed(self):
        c = Cluster(2)
        reqs = [c.rank(1).irecv(src=0, tag=t) for t in (1, 2)]
        c.rank(0).isend(1, b"two", tag=2)
        idx, payload = waitany(reqs)
        assert (idx, payload) == (1, b"two")

    def test_waitany_empty(self):
        with pytest.raises(ValueError):
            waitany([])

    def test_waitany_deadlock(self):
        c = Cluster(2)
        reqs = [c.rank(1).irecv(src=0, tag=1)]
        with pytest.raises(RuntimeError):
            waitany(reqs, max_rounds=5)

    def test_testall(self):
        c = Cluster(2)
        reqs = [c.rank(1).irecv(src=0, tag=t) for t in (1, 2)]
        c.rank(0).isend(1, b"a", tag=1)
        assert not mpi.testall(reqs)
        c.rank(0).isend(1, b"b", tag=2)
        assert mpi.testall(reqs)


class TestPersistent:
    def test_recv_reuse_across_iterations(self):
        c = Cluster(2)
        precv = PersistentRecv(c.rank(1), src=0, tag=6)
        psend = PersistentSend(c.rank(0), dst=1, tag=6)
        for i in range(5):
            precv.start()
            psend.start(np.full(3, i))
            assert np.array_equal(precv.wait(), np.full(3, i))
        assert psend.starts == 5

    def test_double_start_rejected(self):
        c = Cluster(2)
        precv = PersistentRecv(c.rank(1), src=0, tag=6)
        precv.start()
        with pytest.raises(RuntimeError):
            precv.start()

    def test_wait_before_start_rejected(self):
        c = Cluster(2)
        with pytest.raises(RuntimeError):
            PersistentRecv(c.rank(1), src=0, tag=6).wait()


class TestNewCollectives:
    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_scatter(self, p):
        comm = Communicator(Cluster(p))
        for root in range(p):
            payloads = [f"{root}->{r}" for r in range(p)]
            assert scatter(comm, root, payloads) == payloads

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
    def test_allgather(self, p):
        comm = Communicator(Cluster(p))
        vals = [f"r{i}" for i in range(p)]
        out = allgather(comm, vals)
        assert all(view == vals for view in out)

    @pytest.mark.parametrize("p", [1, 2, 4, 7])
    def test_allreduce(self, p):
        comm = Communicator(Cluster(p))
        vals = list(range(1, p + 1))
        assert allreduce(comm, vals, lambda a, b: a + b) == [sum(vals)] * p

    @pytest.mark.parametrize("p", [1, 2, 4, 7])
    def test_scan_prefixes(self, p):
        comm = Communicator(Cluster(p))
        vals = list(range(1, p + 1))
        got = scan(comm, vals, lambda a, b: a + b)
        import itertools
        assert got == list(itertools.accumulate(vals))

    def test_scan_noncommutative(self):
        comm = Communicator(Cluster(4))
        got = scan(comm, list("abcd"), lambda a, b: a + b)
        assert got == ["a", "ab", "abc", "abcd"]

    def test_shape_validation(self):
        comm = Communicator(Cluster(3))
        with pytest.raises(ValueError):
            scatter(comm, 0, [1])
        with pytest.raises(ValueError):
            allgather(comm, [1])
        with pytest.raises(ValueError):
            scan(comm, [1], lambda a, b: a + b)
