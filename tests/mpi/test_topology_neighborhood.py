"""Virtual topologies and neighborhood collectives."""

from __future__ import annotations

import pytest

from repro.mpi import (CartGraph, Cluster, Communicator, DistGraph,
                       neighbor_allgather, neighbor_alltoall,
                       neighbor_alltoallv)


def make_comm(p: int, **kw) -> Communicator:
    return Communicator(Cluster(p, **kw))


class TestCartGraph:
    def test_coords_roundtrip_row_major(self):
        g = CartGraph((3, 4))
        assert g.n_ranks == 12
        assert g.coords(0) == (0, 0)
        assert g.coords(5) == (1, 1)
        for r in range(g.n_ranks):
            assert g.rank_of(g.coords(r)) == r

    def test_neighbor_order_minus_then_plus_per_dim(self):
        g = CartGraph((3, 3))
        # rank 4 = center of a 3x3 grid: -x, +x, -y, +y
        assert g.destinations(4) == [1, 7, 3, 5]

    def test_non_periodic_boundary_truncates(self):
        g = CartGraph((3,))
        assert g.destinations(0) == [1]
        assert g.destinations(2) == [1]

    def test_periodic_wraps(self):
        g = CartGraph((4,), periodic=True)
        assert g.destinations(0) == [3, 1]
        assert g.destinations(3) == [2, 0]

    def test_tiny_periodic_dims_never_self_loop_or_duplicate(self):
        g = CartGraph((2, 2), periodic=True)
        for r in range(4):
            dests = g.destinations(r)
            assert r not in dests
            assert len(dests) == len(set(dests))

    def test_symmetric(self):
        g = CartGraph((4, 3), periodic=(True, False))
        for src, dst in g.edges():
            assert src in g.sources(dst)

    def test_validation(self):
        with pytest.raises(ValueError):
            CartGraph(())
        with pytest.raises(ValueError):
            CartGraph((3, 0))
        with pytest.raises(ValueError):
            CartGraph((2, 2), periodic=(True,))
        g = CartGraph((2, 2))
        with pytest.raises(ValueError):
            g.coords(4)
        with pytest.raises(ValueError):
            g.rank_of((2, 0))


class TestDistGraph:
    def test_declaration_order_preserved(self):
        g = DistGraph({0: [2, 1], 1: [0], 2: [0]})
        assert g.destinations(0) == [2, 1]

    def test_sources_are_transposed_by_sender(self):
        g = DistGraph({0: [2], 1: [2], 2: [0]})
        assert g.sources(2) == [0, 1]
        assert g.sources(0) == [2]
        assert g.sources(1) == []

    def test_self_and_duplicate_edges_dropped(self):
        g = DistGraph({0: [0, 1, 1], 1: []})
        assert g.destinations(0) == [1]

    def test_n_ranks_inferred_and_validated(self):
        assert DistGraph({0: [3]}).n_ranks == 4
        with pytest.raises(ValueError):
            DistGraph({0: [5]}, n_ranks=3)

    def test_dense_sequence_form(self):
        g = DistGraph([[1], [2], [0]])
        assert g.edges() == [(0, 1), (1, 2), (2, 0)]


class TestNeighborhoodCollectives:
    def test_allgather_ring(self):
        comm = make_comm(4)
        topo = CartGraph((4,), periodic=True)
        out = neighbor_allgather(comm, topo,
                                 [f"c{r}" for r in range(4)])
        # sources order: -1 neighbor then +1 neighbor
        assert out[0] == ["c3", "c1"]
        assert out[2] == ["c1", "c3"]

    def test_alltoall_personalized_on_grid(self):
        comm = make_comm(6)
        topo = CartGraph((2, 3))
        sends = [[(r, d) for d in topo.destinations(r)] for r in range(6)]
        out = neighbor_alltoall(comm, topo, sends)
        for r in range(6):
            assert out[r] == [(s, r) for s in topo.sources(r)]

    def test_alltoallv_variable_counts(self):
        comm = make_comm(3)
        topo = DistGraph({0: [1, 2], 1: [2], 2: []})
        sends = [[[1], [2, 3, 4]], [[5, 6]], []]
        out = neighbor_alltoallv(comm, topo, sends)
        assert out[1] == [[1]]
        assert out[2] == [[2, 3, 4], [5, 6]]
        assert out[0] == []

    def test_asymmetric_distgraph_edges_only(self):
        """Traffic flows only along declared edges: rank 1 declared no
        destinations, so nobody receives from it."""
        comm = make_comm(3)
        topo = DistGraph({0: [1], 1: [], 2: [1]})
        out = neighbor_alltoall(
            comm, topo, [["from0"], [], ["from2"]])
        assert out[1] == ["from0", "from2"]
        assert out[0] == [] and out[2] == []

    def test_size_mismatch_rejected(self):
        comm = make_comm(4)
        with pytest.raises(ValueError, match="topology"):
            neighbor_allgather(comm, CartGraph((3,)), ["a"] * 4)

    def test_send_list_arity_checked(self):
        comm = make_comm(4)
        topo = CartGraph((4,), periodic=True)
        with pytest.raises(ValueError, match="destination neighbors"):
            neighbor_alltoall(comm, topo, [["only-one"]] + [[]] * 3)

    def test_repeated_supersteps_stay_isolated(self):
        """Back-to-back neighborhood exchanges never cross-match."""
        comm = make_comm(4)
        topo = CartGraph((4,), periodic=True)
        for step in range(3):
            out = neighbor_alltoall(
                comm, topo,
                [[(step, r, d) for d in topo.destinations(r)]
                 for r in range(4)])
            for r in range(4):
                assert out[r] == [(step, s, r) for s in topo.sources(r)]
