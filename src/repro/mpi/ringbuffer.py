"""Fixed-capacity ingress rings: GPU-resident message queues.

The paper's system model gives every GPU "a message queue" into which
remote sends write directly (GAS stores).  On a real GPU these rings are
**statically sized** -- Section VII-C laments the lack of "dynamic memory
management within GPU kernels" -- so a full ring must push back on the
producer.  :class:`RingBuffer` models one single-producer/single-consumer
ring with head/tail counters and occupancy statistics;
:class:`IngressRings` aggregates one ring per peer at a receiving
endpoint, which is the paper's "keeps connections to its peers" layout
and also what makes per-source ordering trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["RingBuffer", "IngressRings"]


class RingBuffer:
    """Single-producer single-consumer ring with monotonic counters.

    ``tail`` counts pushes, ``head`` counts pops; occupancy is their
    difference and slot indices are the counters modulo capacity --
    exactly the two-pointer protocol a GAS sender and the communication
    kernel would run against device memory.
    """

    __slots__ = ("capacity", "_slots", "_head", "_tail", "pushes",
                 "rejected", "repush_attempts", "repush_rejected",
                 "high_watermark", "_obs")

    def __init__(self, capacity: int, obs=None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._obs = obs
        self._slots: list[Any] = [None] * capacity
        self._head = 0
        self._tail = 0
        self.pushes = 0
        self.rejected = 0
        self.repush_attempts = 0
        self.repush_rejected = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return self._tail - self._head

    @property
    def free_slots(self) -> int:
        """Remaining capacity (the producer's credit count)."""
        return self.capacity - len(self)

    @property
    def full(self) -> bool:
        return len(self) == self.capacity

    @property
    def drops(self) -> int:
        """Total failed stores (first-time rejections + failed retries)."""
        return self.rejected + self.repush_rejected

    def try_push(self, item: Any, retry: bool = False) -> bool:
        """Producer side: append if a slot is free; False on a full ring.

        ``retry`` marks a re-push of a previously rejected store (flow-
        control retry or spill drain); re-push attempts and their
        rejections are counted separately from first-time traffic.
        """
        if retry:
            self.repush_attempts += 1
        if self.full:
            if retry:
                self.repush_rejected += 1
            else:
                self.rejected += 1
            if self._obs is not None:
                self._obs.count("ring.rejected")
            return False
        self._slots[self._tail % self.capacity] = item
        self._tail += 1
        self.pushes += 1
        self.high_watermark = max(self.high_watermark, len(self))
        if self._obs is not None:
            self._obs.observe("ring.occupancy", float(len(self)))
            self._obs.gauge("ring.high_watermark",
                            float(self.high_watermark))
        return True

    def stats(self) -> dict:
        """Occupancy and rejection statistics, mirroring
        :meth:`IngressRings.stats`."""
        return {
            "capacity": self.capacity,
            "queued": len(self),
            "free_slots": self.free_slots,
            "pushes": self.pushes,
            "rejected": self.rejected,
            "repush_attempts": self.repush_attempts,
            "repush_rejected": self.repush_rejected,
            "drops": self.drops,
            "high_watermark": self.high_watermark,
        }

    def pop(self) -> Any | None:
        """Consumer side: remove and return the oldest item, or None."""
        if len(self) == 0:
            return None
        item = self._slots[self._head % self.capacity]
        self._slots[self._head % self.capacity] = None
        self._head += 1
        return item

    def peek(self) -> Any | None:
        """Oldest item without removing it."""
        if len(self) == 0:
            return None
        return self._slots[self._head % self.capacity]


@dataclass
class IngressRings:
    """Per-peer ingress rings of one endpoint.

    Rings are created lazily per source rank; per-source FIFO order is a
    structural property (one ring per source, SPSC).
    """

    capacity: int
    rings: dict[int, RingBuffer] = field(default_factory=dict)
    obs: Any = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be positive")

    def ring_for(self, src: int) -> RingBuffer:
        """The (lazily created) ring receiving from ``src``."""
        ring = self.rings.get(src)
        if ring is None:
            ring = RingBuffer(self.capacity, obs=self.obs)
            self.rings[src] = ring
        return ring

    def try_push(self, src: int, item: Any, retry: bool = False) -> bool:
        """Producer entry point (the remote GAS store)."""
        return self.ring_for(src).try_push(item, retry=retry)

    def drain(self, budget: int | None = None) -> list[Any]:
        """Consumer side: pop up to ``budget`` items, round-robin over
        peers (the communication kernel's dequeue loop)."""
        out: list[Any] = []
        remaining = budget if budget is not None else float("inf")
        progress = True
        while remaining > 0 and progress:
            progress = False
            for ring in self.rings.values():
                if remaining <= 0:
                    break
                item = ring.pop()
                if item is not None:
                    out.append(item)
                    remaining -= 1
                    progress = True
        return out

    @property
    def queued(self) -> int:
        """Items currently waiting across all rings."""
        return sum(len(r) for r in self.rings.values())

    def stats(self) -> dict:
        """Aggregate ring statistics."""
        return {
            "peers": len(self.rings),
            "queued": self.queued,
            "pushes": sum(r.pushes for r in self.rings.values()),
            "rejected": sum(r.rejected for r in self.rings.values()),
            "repush_attempts": sum(r.repush_attempts
                                   for r in self.rings.values()),
            "repush_rejected": sum(r.repush_rejected
                                   for r in self.rings.values()),
            "drops": sum(r.drops for r in self.rings.values()),
            "high_watermark": max(
                (r.high_watermark for r in self.rings.values()), default=0),
        }
